"""Hierarchically separated trees (HSTs) from random hierarchical partitions.

The Ramsey tree covers for general metrics (Table 1, [MN06]) are built
from hierarchies of CKR-style random decompositions; each hierarchy
yields a dominating HST, and a point that is *padded* at every level of
the hierarchy enjoys ``O(ℓ)`` stretch to every other point in that HST.

This module provides the two building blocks:

* :func:`ckr_partition` — the Calinescu–Karloff–Rabani random
  decomposition of a cluster at a given scale;
* :class:`PartitionHierarchy` — a top-down hierarchy of such partitions,
  with padding bookkeeping, convertible to a :class:`CoverTree`.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Set

import numpy as np

from ..graphs.tree import Tree
from ..metrics.base import Metric
from ..observability import OBS, trace
from .base import CoverTree

_C_PARTITIONS = OBS.registry.counter("cover.hst.ckr_partitions")
_C_CLUSTERS = OBS.registry.counter("cover.hst.clusters")

__all__ = ["ckr_partition", "PartitionHierarchy", "build_hst"]


def _distance_rows(metric: Metric, center: int, members: np.ndarray) -> np.ndarray:
    """Distances from ``center`` to each of ``members`` (vectorized if possible)."""
    if metric.supports_batch:
        return metric.pairwise([center], members)[0]
    rows = getattr(metric, "distances_from", None)
    if rows is not None:
        return rows(center)[members]
    return np.array([metric.distance(center, int(v)) for v in members])


def ckr_partition(
    metric: Metric, members: Sequence[int], scale: float, rng: random.Random
) -> List[List[int]]:
    """CKR random decomposition of ``members`` into clusters of diameter <= scale.

    A uniformly random radius ``r`` in ``[scale/4, scale/2]`` and a random
    permutation π of the members define the cluster of each point as the
    first π-element within distance ``r`` of it.

    Cluster assignment only ever needs distances from the current center
    to the *still unassigned* members, so each sweep computes exactly
    that block through the batch kernel — the dominant cost drops from
    Θ(centers · members) to roughly the number of assignment attempts.
    """
    member_array = np.asarray(sorted(members), dtype=np.int64)
    radius = rng.uniform(scale / 4.0, scale / 2.0)
    order = list(range(len(member_array)))
    rng.shuffle(order)
    owner = np.full(len(member_array), -1, dtype=np.int64)
    unassigned = np.arange(len(member_array))
    for rank, position in enumerate(order):
        if unassigned.size == 0:
            break
        center = int(member_array[position])
        dist = _distance_rows(metric, center, member_array[unassigned])
        take = dist <= radius
        owner[unassigned[take]] = rank
        unassigned = unassigned[~take]
    clusters: dict = {}
    for index, own in enumerate(owner):
        clusters.setdefault(int(own), []).append(int(member_array[index]))
    if OBS.enabled:
        _C_PARTITIONS.inc()
        _C_CLUSTERS.inc(len(clusters))
    return list(clusters.values())


class _HierarchyNode:
    __slots__ = ("members", "scale", "children", "rep")

    def __init__(self, members: List[int], scale: float):
        self.members = members
        self.scale = scale
        self.children: List["_HierarchyNode"] = []
        self.rep = members[0]


class PartitionHierarchy:
    """A top-down hierarchy of CKR partitions over a metric.

    The root holds all points at a scale at least the diameter; each
    cluster is recursively partitioned at half its scale until it is a
    singleton.  ``padded`` marks the points whose ``scale/alpha`` ball
    stayed inside their cluster at *every* level — the Mendel–Naor
    padding event whose probability is about ``n^{-1/ℓ}`` when
    ``alpha = Θ(ℓ)``.
    """

    def __init__(
        self,
        metric: Metric,
        alpha: float,
        rng: random.Random,
        diameter: Optional[float] = None,
    ):
        self.metric = metric
        self.alpha = alpha
        if diameter is None:
            diameter = 2.0 * float(np.max(metric.distances_from(0)))
        top_scale = 2.0 ** math.ceil(math.log2(max(diameter, 1e-12)))
        self.root = _HierarchyNode(list(range(metric.n)), top_scale)
        self.padded: Set[int] = set(range(metric.n))
        self._build(self.root, rng)

    def _build(self, node: _HierarchyNode, rng: random.Random) -> None:
        if len(node.members) == 1:
            return
        clusters = ckr_partition(self.metric, node.members, node.scale, rng)
        cluster_of = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                cluster_of[v] = index
        # Padding check: the scale/alpha ball around a padded point must
        # stay within its own cluster.  Checked for all still-padded
        # members at once via a (chunked) pairwise block.
        pad_radius = node.scale / self.alpha
        member_array = np.asarray(node.members, dtype=np.int64)
        cluster_ids = np.asarray([cluster_of[int(v)] for v in member_array])
        still_padded = np.asarray(
            [v for v in node.members if v in self.padded], dtype=np.int64
        )
        if still_padded.size:
            padded_clusters = np.asarray([cluster_of[int(v)] for v in still_padded])
            chunk = max(1, 2_000_000 // max(1, member_array.size))
            for start in range(0, still_padded.size, chunk):
                rows = still_padded[start : start + chunk]
                if self.metric.supports_batch:
                    block = self.metric.pairwise(rows, member_array)
                else:
                    block = np.vstack(
                        [_distance_rows(self.metric, int(v), member_array) for v in rows]
                    )
                cut = (block <= pad_radius) & (
                    cluster_ids[None, :] != padded_clusters[start : start + chunk, None]
                )
                for v in rows[cut.any(axis=1)]:
                    self.padded.discard(int(v))
        for cluster in clusters:
            child = _HierarchyNode(cluster, node.scale / 2.0)
            node.children.append(child)
            self._build(child, rng)

    def to_cover_tree(self) -> CoverTree:
        """Convert to a dominating :class:`CoverTree` (an HST).

        Each hierarchy node becomes a tree vertex; the edge to a child
        weighs twice the parent's scale, so two points splitting at a
        scale-``s`` node are at tree distance in ``[4s, 8s]`` —
        dominating because that node's cluster has diameter at most
        ``2s``, and within ``8·alpha`` of the true distance for points
        padded at every level.
        """
        parents: List[float] = []
        weights: List[float] = []
        reps: List[int] = []
        vertex_of_point = [-1] * self.metric.n

        def visit(node: _HierarchyNode, parent_id: int) -> None:
            node_id = len(parents)
            parents.append(parent_id)
            # The edge to the parent must dominate the distance between
            # any two representatives drawn from the parent's cluster,
            # whose diameter is bounded by twice the parent's scale
            # (= 4x this node's scale).
            weights.append(node.scale * 4.0 if parent_id != -1 else 0.0)
            reps.append(node.rep)
            if len(node.members) == 1:
                vertex_of_point[node.members[0]] = node_id
            for child in node.children:
                visit(child, node_id)

        visit(self.root, -1)
        tree = Tree(parents, weights)
        return CoverTree(tree, vertex_of_point, reps)


def build_hst(metric: Metric, alpha: float, seed: int = 0) -> "tuple[CoverTree, Set[int]]":
    """One dominating HST plus the set of points padded at every level."""
    with trace("hst.build", n=metric.n, alpha=alpha):
        rng = random.Random(seed)
        hierarchy = PartitionHierarchy(metric, alpha, rng)
        return hierarchy.to_cover_tree(), hierarchy.padded
