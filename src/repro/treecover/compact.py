"""Compact tree covers for doubling metrics: ζ independent of n.

The Theorem 4.1 construction spends one tree per (phase, pairing-set)
slot, and the number of pairing sets grows with n — 2774 trees at
n=2000.  "Optimal Bounds for Spanners and Tree Covers in Doubling
Metrics" (arXiv:2508.11555) shows doubling metrics admit tree covers
whose size depends only on the doubling dimension and ε, built from
net trees over *shifted* hierarchies: instead of pairing well-separated
net points explicitly, run several copies of the pure-connectivity
merge pass with the merge radius scaled by ``2^{s/shifts}`` for
``s = 0..shifts-1``.  A pair at distance d then finds, in some shift,
a merge level whose radius exceeds d by at most a ``2^{1/shifts}``
factor — the shifted hierarchies play the role the pairing sets play
in Theorem 4.1, at a constant number of trees.

Concretely this backend emits ``phases × shifts`` trees
(``phases = ⌈log 1/ε⌉ + 2`` exactly as in the robust construction, so
subtree diameters stay geometric): tree ``(p, s)`` replays, bottom-up
over the levels ``i ≡ p (mod phases)``, the connectivity merges of
Section 4.3 with radius ``2 · 2^{s/shifts} · 2^i`` around every net
point.  At the default ``eps=0.5, shifts=4`` that is **12 trees at any
n**.  Each tree dominates the metric by the triangle inequality (leaf
representatives are the points themselves); the stretch constant is
measured, not assumed — the cover goes through the same
``measured_stretch`` / :class:`~repro.checkpoint.audit.CoverContract`
machinery as the robust backend, and the declared γ is recorded in
checkpoint meta alongside the ``{"family": "compact"}`` builder spec.

What this backend gives up relative to Theorem 4.1 is *robustness*:
internal vertices are net points, not pairing-gathered hubs, so the
arbitrary-leaf-replacement property that powers the Theorem 4.2
fault-tolerant spanners is not guaranteed.  Use it where ζ is the
bottleneck (navigator memory, packed arenas, query fan-out) and the
robust backend where FT contracts are needed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..metrics.base import Metric
from ..metrics.doubling import NetHierarchy
from ..observability import OBS, trace
from ..parallel import map_per_tree
from .base import CoverTree, TreeCover
from .dumbbell import _ForestBuilder

_C_COMPACT_GROUPS = OBS.registry.counter("cover.compact.merge_groups")

__all__ = ["compact_tree_cover"]


def _build_compact_tree(ctx, task: Tuple[int, int]) -> CoverTree:
    """Per-tree fan-out unit: replay one (phase, shift) merge script.

    Mirrors ``dumbbell._build_robust_tree``: groups are precomputed once
    in the parent, each tree replays its slice against a fresh
    union-find, deterministically on any worker.
    """
    p, s = task
    levels_by_phase, groups_by_shift, n = ctx.payload
    builder = _ForestBuilder(n)
    merge = builder.merge
    groups_at = groups_by_shift[s]
    for i in levels_by_phase[p]:
        for group in groups_at[i]:
            merge(group, rep=group[0])
    return builder.finish(ctx.metric, n)


def compact_tree_cover(
    metric: Metric,
    eps: float = 0.5,
    shifts: int = 4,
    hierarchy: Optional[NetHierarchy] = None,
    workers: Optional[int] = None,
) -> TreeCover:
    """Net-tree + shifted-hierarchy tree cover: ``phases × shifts`` trees.

    ``shifts`` trades stretch for ζ — each extra shift refines the
    radius octave by another ``2^{1/shifts}`` factor at the cost of
    ``phases`` more trees.  ``workers`` fans the per-tree replays over
    the process pool exactly as :func:`robust_tree_cover` does; the
    output is identical at any worker count.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    if shifts < 1:
        raise ValueError("shifts must be at least 1")
    with trace("compact_cover", n=metric.n, eps=eps, shifts=shifts):
        return _compact_tree_cover(metric, eps, shifts, hierarchy, workers)


def _compact_tree_cover(
    metric: Metric,
    eps: float,
    shifts: int,
    hierarchy: Optional[NetHierarchy],
    workers: Optional[int],
) -> TreeCover:
    phases = math.ceil(math.log2(1.0 / eps)) + 2
    if hierarchy is None:
        # Extend below the minimum distance as the robust construction
        # does, so every pair — however close — has a merge level whose
        # radius lands within one octave of its distance.
        from ..metrics.doubling import scale_levels

        lo, hi = scale_levels(metric)
        lo -= phases
        hierarchy = NetHierarchy(metric, i_min=lo, i_max=hi)
    top = hierarchy.i_max + phases

    # Precompute the merge groups once per shift with batched near-net
    # sweeps; every (phase, shift) tree replays a slice of them.
    with trace("merge_groups"):
        groups_by_shift: List[Dict[int, List[List[int]]]] = []
        for s in range(shifts):
            scale = 2.0 ** (s / shifts)
            groups_at: Dict[int, List[List[int]]] = {}
            for i in range(hierarchy.i_min + 1, top + 1):
                net = hierarchy.net(min(i, hierarchy.i_max))
                near = hierarchy.net_points_within_many(
                    i - phases, net, 2.0 * scale * 2.0**i
                )
                groups_at[i] = [
                    group
                    for z, nbrs in zip(net, near)
                    if len(group := list(dict.fromkeys([z] + nbrs))) > 1
                ]
            groups_by_shift.append(groups_at)
        if OBS.enabled:
            _C_COMPACT_GROUPS.inc(
                sum(
                    len(groups)
                    for groups_at in groups_by_shift
                    for groups in groups_at.values()
                )
            )

    levels_by_phase = [
        [
            i
            for i in range(hierarchy.i_min + 1, top + 1)
            if (i - (hierarchy.i_min + 1)) % phases == p
        ]
        for p in range(phases)
    ]
    tasks = [(p, s) for p in range(phases) for s in range(shifts)]
    with trace("build_trees", trees=len(tasks)):
        trees: List[CoverTree] = map_per_tree(
            _build_compact_tree,
            tasks,
            workers=workers,
            metric=metric,
            payload=(levels_by_phase, groups_by_shift, metric.n),
        )
    return TreeCover(metric, trees)
