"""Tree covers for planar (fixed-minor-free) metrics via shortest-path separators.

[BFN19] give a ``(1+ε, O((log n/ε)²))``-tree cover for minor-free
metrics using shortest-path separators and portals.  We implement the
same skeleton — recursive balanced decomposition along shortest paths,
one cover tree per recursion level — with simplified portal bookkeeping:
every vertex of a piece connects to its nearest separator-path vertex,
and the separator path itself is kept with its true edge weights.

For a pair (u, v) first separated at level ℓ, the true shortest path
crosses that level's separator path P at some vertex c, and routing
u → nearest(P) → (along P) → nearest(P) ← v costs at most 3·δ(u, v)
(the nearest-portal projections and the subpath of P are all bounded by
shortest-path distances).  So this cover has ζ = O(log n) trees and
*measured* stretch ≤ 3 (typically ~1.5); DESIGN.md records the
substitution versus the paper's (1+ε) portal scheme.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.tree import Tree
from ..metrics.planar import PlanarGraphMetric
from .base import CoverTree, TreeCover

__all__ = ["planar_tree_cover"]


def _piece_sssp(
    metric: PlanarGraphMetric, piece: Set[int], sources: List[int]
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Multi-source Dijkstra restricted to ``piece``.

    Returns distances and the source ("portal") each vertex is closest to.
    """
    dist: Dict[int, float] = {s: 0.0 for s in sources}
    owner: Dict[int, int] = {s: s for s in sources}
    heap = [(0.0, s, s) for s in sources]
    heapq.heapify(heap)
    while heap:
        d, u, src = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, w in metric.adj[u].items():
            if v not in piece:
                continue
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                owner[v] = src
                heapq.heappush(heap, (nd, v, src))
    return dist, owner


def _separator_path(metric: PlanarGraphMetric, piece: Set[int]) -> List[int]:
    """A shortest path between two roughly-farthest vertices of the piece.

    Double-sweep heuristic: from an arbitrary vertex find the farthest
    ``a``, from ``a`` the farthest ``b``, and return the a-b shortest
    path inside the piece.  On grids and Delaunay graphs this splits the
    piece into balanced parts; the recursion depth is measured in tests.
    """
    start = next(iter(piece))
    dist, _ = _piece_sssp(metric, piece, [start])
    a = max(dist, key=lambda v: dist[v])
    dist_a, _ = _piece_sssp(metric, piece, [a])
    b = max(dist_a, key=lambda v: dist_a[v])
    # Recover the a-b path by retracing parents via a fresh Dijkstra.
    parent: Dict[int, int] = {a: -1}
    dist2: Dict[int, float] = {a: 0.0}
    heap = [(0.0, a)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist2.get(u, math.inf):
            continue
        for v, w in metric.adj[u].items():
            if v not in piece:
                continue
            nd = d + w
            if nd < dist2.get(v, math.inf):
                dist2[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    path = [b]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    return list(reversed(path))


def planar_tree_cover(
    metric: PlanarGraphMetric, max_levels: Optional[int] = None
) -> TreeCover:
    """A tree cover for a planar-graph metric, one tree per recursion level."""
    n = metric.n
    diameter = float(max(metric.sssp(0)))

    # pieces_at_level[l] = list of vertex sets still undecomposed at level l.
    pieces: List[Set[int]] = [set(range(n))]
    trees: List[CoverTree] = []
    level = 0
    while pieces:
        if max_levels is not None and level >= max_levels:
            break
        # Build this level's cover tree: per piece, the separator path
        # plus every piece vertex hanging off its nearest path vertex.
        # All piece-trees join under a virtual root with edges heavy
        # enough to dominate any metric distance.
        parents = [-2] * n
        weights = [0.0] * n
        reps = list(range(n))
        next_pieces: List[Set[int]] = []
        attach_roots: List[int] = []

        for piece in pieces:
            path = _separator_path(metric, piece)
            path_set = set(path)
            dist_to_path, owner = _piece_sssp(metric, piece, path)
            # Path vertices chain up toward the path's first vertex.
            for idx, v in enumerate(path):
                if idx == 0:
                    parents[v] = -1
                    attach_roots.append(v)
                else:
                    parents[v] = path[idx - 1]
                    weights[v] = metric.adj[path[idx - 1]][v]
            # Other piece vertices hang off their nearest path vertex.
            for v in piece:
                if v not in path_set:
                    parents[v] = owner[v]
                    # Piece-restricted distance: at least the metric
                    # distance (keeps domination) and exactly what the
                    # stretch-3 routing argument uses.
                    weights[v] = dist_to_path[v]
            # Recurse on the connected components of piece minus the path.
            remaining = piece - path_set
            while remaining:
                seed = next(iter(remaining))
                component = {seed}
                stack = [seed]
                while stack:
                    u = stack.pop()
                    for w_ in metric.adj[u]:
                        if w_ in remaining and w_ not in component:
                            component.add(w_)
                            stack.append(w_)
                remaining -= component
                if len(component) > 1:
                    next_pieces.append(component)

        # Vertices not in any current piece (separated at earlier levels,
        # or singleton leftovers) attach under the virtual root as well.
        root = None
        for v in range(n):
            if parents[v] == -1 and root is None:
                root = v
        if root is None:
            break
        for v in range(n):
            if parents[v] == -2:
                parents[v] = root
                weights[v] = 2.0 * diameter
        for r in attach_roots:
            if r != root:
                parents[r] = root
                weights[r] = 2.0 * diameter
        trees.append(CoverTree(Tree(parents, weights), list(range(n)), reps))
        pieces = next_pieces
        level += 1
    return TreeCover(metric, trees)
