"""Self-verifying checkpoints: audited persistence + automatic recovery.

The expensive artifacts of this reproduction — robust tree covers
(Theorem 4.1), Solomon 1-spanner navigation state 𝒟_T (Theorem 1.1),
f-FT spanners with their R(v) replica pools (Theorem 4.2), and routing
label tables (Section 5) — are persisted here in a format whose every
load is *verified, then trusted*:

* :mod:`~repro.checkpoint.format` — checkpoint format v2: versioned
  envelopes, CRC32 per section (one section per cover tree), SHA-256
  whole-file digest, atomic write-then-rename, backward-compatible
  loading of the v1 :mod:`repro.io` format;
* :mod:`~repro.checkpoint.audit` — the structural auditor: tree
  well-formedness, Table-1 stretch contracts, navigator hop budgets,
  Theorem-4.2 replica-pool structure, label-only distance agreement;
* :mod:`~repro.checkpoint.recovery` — per-tree repair, full-rebuild
  fallback, and :class:`CheckpointService` for
  ``DegradedResult``-labelled service while recovery runs.

CLI: ``python -m repro checkpoint ...`` (build + save),
``python -m repro audit ...`` (verify on demand, ``--recover`` to
repair).  See docs/CHECKPOINTS.md for the format spec and policies.
"""

from .audit import (
    AuditReport,
    CoverContract,
    audit_cover,
    audit_cover_tree,
    audit_ft_spanner,
    audit_labels,
    audit_navigator,
    audit_tree,
)
from .format import (
    CHECKPOINT_FORMAT,
    RAW_SECTION,
    load_mapped_arrays,
    make_envelope,
    open_envelope,
    peek_envelope,
    raw_array_table,
    read_checkpoint_file,
    write_checkpoint_file,
)
from .recovery import (
    CheckpointService,
    RecoveryReport,
    TreeRepair,
    builder_from_meta,
    recover_cover,
)
from .store import (
    audit_checkpoint,
    cover_labelings,
    load_cover_checkpoint,
    load_ft_checkpoint,
    load_labels_checkpoint,
    load_navigator_checkpoint,
    save_cover_checkpoint,
    save_ft_checkpoint,
    save_labels_checkpoint,
    save_navigator_checkpoint,
)

__all__ = [
    "AuditReport",
    "CoverContract",
    "audit_cover",
    "audit_cover_tree",
    "audit_ft_spanner",
    "audit_labels",
    "audit_navigator",
    "audit_tree",
    "CHECKPOINT_FORMAT",
    "RAW_SECTION",
    "load_mapped_arrays",
    "make_envelope",
    "open_envelope",
    "peek_envelope",
    "raw_array_table",
    "read_checkpoint_file",
    "write_checkpoint_file",
    "CheckpointService",
    "RecoveryReport",
    "TreeRepair",
    "builder_from_meta",
    "recover_cover",
    "audit_checkpoint",
    "cover_labelings",
    "load_cover_checkpoint",
    "load_ft_checkpoint",
    "load_labels_checkpoint",
    "load_navigator_checkpoint",
    "save_cover_checkpoint",
    "save_ft_checkpoint",
    "save_labels_checkpoint",
    "save_navigator_checkpoint",
]
