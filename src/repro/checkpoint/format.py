"""Checkpoint format v2: versioned, checksummed, atomically written.

An envelope (``repro.checkpoint/2``) is a JSON object::

    {
      "format":   "repro.checkpoint/2",
      "kind":     "cover" | "navigator" | "ft_spanner" | "routing_labels",
      "meta":     {...},                     # n, build params, contract
      "sections": {name: {"crc32": int, "body": {...}}, ...},
      "digest":   "<sha256 hex over everything above>"
    }

Every section carries a CRC32 of its canonical JSON encoding, so
corruption is localized to a *named* section (each cover tree is its
own section — the granularity the per-tree recovery of
:mod:`repro.checkpoint.recovery` needs), and the whole file carries a
SHA-256 digest, so any single-byte change anywhere is detected.  Writes
go through :func:`repro.io.atomic_write_json` (tempfile +
``os.replace``), so a crash mid-save never leaves a torn file.

This module is purely about *format* integrity and shape: every failure
raises :class:`~repro.errors.CheckpointCorruption`.  Whether the decoded
structure still satisfies the paper's invariants is the job of
:mod:`repro.checkpoint.audit`.

Backward compatibility: :func:`load_cover_checkpoint` transparently
accepts the unchecksummed v1 format of :mod:`repro.io`
(``repro.treecover/1``); v1 files get shape validation and a structural
audit, just no checksum verification (there is nothing to verify).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CheckpointCorruption
from ..io import (
    V1_COVER_FORMAT,
    atomic_write_json,
    cover_from_dict,
    cover_tree_from_dict,
    tree_to_dict,
)
from ..metrics.base import Metric
from ..treecover.base import CoverTree, TreeCover

__all__ = [
    "CHECKPOINT_FORMAT",
    "KINDS",
    "RAW_SECTION",
    "canonical_bytes",
    "section_crc",
    "make_envelope",
    "open_envelope",
    "peek_envelope",
    "read_checkpoint_file",
    "write_checkpoint_file",
    "raw_array_table",
    "load_mapped_arrays",
    "cover_sections",
    "cover_from_sections",
    "load_v1_cover",
    "tree_section_name",
]

CHECKPOINT_FORMAT = "repro.checkpoint/2"
KINDS = ("cover", "navigator", "ft_spanner", "routing_labels")

#: Section naming the memory-mappable raw-array region of the file.
#: The section body is a table (dtype/shape/offset/CRC32 per array);
#: the array bytes live *after* the JSON envelope line, page-aligned,
#: so loaders can ``np.memmap`` them without parsing or copying.  The
#: table is covered by the envelope digest like any section; the raw
#: bytes are covered by the per-array CRC32s recorded in the table.
RAW_SECTION = "packed/arrays"

# Raw region page alignment (data region start) and per-array alignment.
_DATA_ALIGN = 4096
_ARRAY_ALIGN = 64

# dtypes allowed in the raw region — everything the packed query suite
# emits; keeps eval of attacker-controlled dtype strings impossible.
_RAW_DTYPES = {"<i4", "<i8", "<f8", "|u1"}


# ----------------------------------------------------------------------
# Canonical encoding and checksums

def canonical_bytes(obj: Any) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, UTF-8.

    Checksums are computed over this encoding, so they are insensitive
    to how the surrounding file was pretty-printed and to the
    tuple-vs-list distinction of the in-memory payload.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def section_crc(body: Any) -> int:
    return zlib.crc32(canonical_bytes(body)) & 0xFFFFFFFF


def _digest(core: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_bytes(core)).hexdigest()


# ----------------------------------------------------------------------
# Envelope assembly and verification

def make_envelope(
    kind: str, meta: Dict[str, Any], sections: Dict[str, Any]
) -> Dict[str, Any]:
    """Wrap section bodies with per-section CRCs and a file digest."""
    if kind not in KINDS:
        raise ValueError(f"unknown checkpoint kind {kind!r}")
    wrapped = {
        name: {"crc32": section_crc(body), "body": body}
        for name, body in sections.items()
    }
    core = {
        "format": CHECKPOINT_FORMAT,
        "kind": kind,
        "meta": meta,
        "sections": wrapped,
    }
    return {**core, "digest": _digest(core)}


def peek_envelope(
    data: Any,
) -> Tuple[str, Dict[str, Any], Dict[str, Any], List[str]]:
    """Partially verify an envelope, reporting damage instead of raising.

    Returns ``(kind, meta, good_bodies, bad_sections)`` where
    ``good_bodies`` maps section names whose CRC verified to their
    bodies, and ``bad_sections`` lists the names that failed (missing
    crc/body fields count as failed).  The whole-file digest is *not*
    required to pass — this is the entry point for per-section salvage
    in the recovery orchestrator.  Raises
    :class:`~repro.errors.CheckpointCorruption` only when the envelope
    itself is unusable (not a dict, wrong format tag, unparseable
    section table).
    """
    if not isinstance(data, dict):
        raise CheckpointCorruption("checkpoint payload is not a JSON object")
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorruption(
            f"format tag {data.get('format')!r} is not {CHECKPOINT_FORMAT!r}"
        )
    kind = data.get("kind")
    if kind not in KINDS:
        raise CheckpointCorruption(f"unknown checkpoint kind {kind!r}")
    meta = data.get("meta")
    if not isinstance(meta, dict):
        raise CheckpointCorruption("meta is not an object")
    table = data.get("sections")
    if not isinstance(table, dict) or not table:
        raise CheckpointCorruption("sections table missing or empty")
    good: Dict[str, Any] = {}
    bad: List[str] = []
    for name, entry in table.items():
        if (
            not isinstance(entry, dict)
            or "body" not in entry
            or not isinstance(entry.get("crc32"), int)
            or section_crc(entry["body"]) != entry["crc32"]
        ):
            bad.append(name)
        else:
            good[name] = entry["body"]
    return kind, meta, good, sorted(bad)


def open_envelope(data: Any) -> Tuple[str, Dict[str, Any], Dict[str, Any]]:
    """Fully verify an envelope: digest plus every section CRC.

    Returns ``(kind, meta, bodies)``; raises
    :class:`~repro.errors.CheckpointCorruption` on the first failed
    check, naming the offending section when the damage is localized.
    """
    kind, meta, good, bad = peek_envelope(data)
    if bad:
        raise CheckpointCorruption("CRC32 mismatch", section=bad[0])
    recorded = data.get("digest")
    core = {key: data[key] for key in ("format", "kind", "meta", "sections")}
    actual = _digest(core)
    if recorded != actual:
        raise CheckpointCorruption(
            f"file digest mismatch: recorded {recorded!r}, computed {actual!r}"
        )
    return kind, meta, good


# ----------------------------------------------------------------------
# File I/O

def _normalized_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        dtype = array.dtype.newbyteorder("<") if array.dtype.itemsize > 1 else array.dtype
        array = array.astype(dtype, copy=False)
        if array.dtype.str not in _RAW_DTYPES:
            raise ValueError(
                f"array {name!r} has unsupported raw dtype {array.dtype.str!r}"
            )
        out[name] = array
    return out


def raw_array_table(arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """The :data:`RAW_SECTION` body describing ``arrays``.

    Assigns offsets (relative to the start of the page-aligned data
    region, each array :data:`_ARRAY_ALIGN`-aligned, in sorted name
    order) and records dtype, shape, byte length and CRC32 per array.
    The same array dict must then be passed to
    :func:`write_checkpoint_file` so bytes land where the table says.
    """
    table: Dict[str, Any] = {"align": _DATA_ALIGN, "arrays": {}}
    offset = 0
    for name, array in _normalized_arrays(arrays).items():
        offset = -(-offset // _ARRAY_ALIGN) * _ARRAY_ALIGN
        table["arrays"][name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
            "crc32": zlib.crc32(array.tobytes()) & 0xFFFFFFFF,
        }
        offset += int(array.nbytes)
    return table


def write_checkpoint_file(
    envelope: Dict[str, Any],
    path: str,
    arrays: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Atomically persist an envelope (tempfile + ``os.replace``).

    Envelopes are written in *canonical* form — the same encoding the
    checksums are computed over — so the file has no insignificant
    whitespace and every single byte is covered by a checksum: any
    one-byte change either breaks the JSON, trips a CRC/digest, or
    invalidates the format tag.

    With ``arrays``, the envelope (which must contain the matching
    :func:`raw_array_table` section) is written as the file's first
    line, zero-padded to a page boundary, followed by the raw array
    bytes at the offsets the table records — the memory-mappable
    layout :func:`load_mapped_arrays` reads.  Raw bytes are covered by
    the table's per-array CRC32s rather than the envelope digest.
    """
    if arrays is None:
        atomic_write_json(envelope, path, canonical=True)
        return
    table = envelope.get("sections", {}).get(RAW_SECTION, {}).get("body")
    if not isinstance(table, dict) or "arrays" not in table:
        raise ValueError(
            f"envelope lacks the {RAW_SECTION!r} section for its raw arrays"
        )
    normalized = _normalized_arrays(arrays)
    header = canonical_bytes(envelope) + b"\n"
    data_start = -(-len(header) // _DATA_ALIGN) * _DATA_ALIGN
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(b"\0" * (data_start - len(header)))
            cursor = 0
            for name, array in normalized.items():
                spec = table["arrays"][name]
                pad = spec["offset"] - cursor
                if pad < 0:
                    raise ValueError(f"raw table offset regressed at {name!r}")
                handle.write(b"\0" * pad)
                handle.write(array.tobytes())
                cursor = spec["offset"] + int(array.nbytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_first_line(path: str) -> bytes:
    """The first line of the file (without the newline), chunked so a
    multi-gigabyte raw region is never pulled into memory."""
    chunks: List[bytes] = []
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            newline = chunk.find(b"\n")
            if newline != -1:
                chunks.append(chunk[:newline])
                break
            chunks.append(chunk)
    return b"".join(chunks)


def read_checkpoint_file(path: str) -> Dict[str, Any]:
    """Read raw checkpoint JSON; unparseable files raise
    :class:`~repro.errors.CheckpointCorruption`.

    Files with a raw-array region keep their envelope on the first
    line, so that line is parsed first; plain JSON files (canonical v2,
    indented v1, or externally pretty-printed) fall back to a
    whole-file parse.
    """
    try:
        first = _read_first_line(path)
        try:
            data = json.loads(first.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        if not isinstance(data, dict):
            raise CheckpointCorruption(
                f"checkpoint {path!r} does not hold a JSON object"
            )
        return data
    except CheckpointCorruption:
        raise
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruption(f"cannot read checkpoint {path!r}: {exc}") from exc


def load_mapped_arrays(
    path: str, table: Dict[str, Any], verify: bool = True
) -> Dict[str, np.ndarray]:
    """Memory-map the raw-array region described by a verified table.

    ``table`` is the (CRC-verified) body of the :data:`RAW_SECTION`
    section.  Each array's bytes are CRC32-checked once (one sequential
    pass over the mapping) and returned as a read-only view into a
    shared ``np.memmap`` — N processes attaching to the same file share
    one physical copy of the pages.  Raises
    :class:`~repro.errors.CheckpointCorruption` on any mismatch.
    """
    specs = table.get("arrays")
    align = table.get("align")
    if not isinstance(specs, dict) or not isinstance(align, int) or align <= 0:
        raise CheckpointCorruption(
            "malformed raw-array table", section=RAW_SECTION
        )
    header_len = len(_read_first_line(path)) + 1
    data_start = -(-header_len // align) * align
    try:
        mm = np.memmap(path, mode="r", dtype=np.uint8)
    except (OSError, ValueError) as exc:
        raise CheckpointCorruption(
            f"cannot map checkpoint {path!r}: {exc}", section=RAW_SECTION
        ) from exc
    out: Dict[str, np.ndarray] = {}
    for name, spec in specs.items():
        if (
            not isinstance(spec, dict)
            or spec.get("dtype") not in _RAW_DTYPES
            or not isinstance(spec.get("shape"), list)
            or not isinstance(spec.get("offset"), int)
            or not isinstance(spec.get("nbytes"), int)
            or not isinstance(spec.get("crc32"), int)
        ):
            raise CheckpointCorruption(
                f"malformed raw-array spec for {name!r}", section=RAW_SECTION
            )
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        nbytes = spec["nbytes"]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count * dtype.itemsize != nbytes or nbytes < 0:
            raise CheckpointCorruption(
                f"raw array {name!r}: shape {shape} disagrees with "
                f"{nbytes} bytes",
                section=RAW_SECTION,
            )
        start = data_start + spec["offset"]
        stop = start + nbytes
        if stop > mm.size:
            raise CheckpointCorruption(
                f"raw array {name!r} extends past end of file",
                section=RAW_SECTION,
            )
        raw = mm[start:stop]
        if verify and zlib.crc32(raw.tobytes()) & 0xFFFFFFFF != spec["crc32"]:
            raise CheckpointCorruption(
                f"raw array {name!r} CRC32 mismatch", section=RAW_SECTION
            )
        array = raw.view(dtype).reshape(shape)
        array.flags.writeable = False
        out[name] = array
    return out


# ----------------------------------------------------------------------
# Cover payloads (shared by every checkpoint kind: navigators, FT
# spanners and routing labels all embed the cover they were built from)

def tree_section_name(index: int) -> str:
    return f"tree/{index:04d}"


def cover_sections(cover: TreeCover) -> Dict[str, Any]:
    """One section per cover tree plus a ``cover`` header section.

    The per-tree granularity is what makes single-tree corruption
    detectable — and repairable — without touching the other trees.
    """
    sections: Dict[str, Any] = {
        "cover": {
            "n": cover.metric.n,
            "num_trees": cover.size,
            "home": cover.home,
        }
    }
    for index, cover_tree in enumerate(cover.trees):
        sections[tree_section_name(index)] = {
            "tree": tree_to_dict(cover_tree.tree),
            "vertex_of_point": list(cover_tree.vertex_of_point),
            "rep_point": list(cover_tree.rep_point),
        }
    return sections


def _decode_tree_section(body: Any, name: str, n_points: int) -> CoverTree:
    try:
        return cover_tree_from_dict(body, n_points)
    except ValueError as exc:
        raise CheckpointCorruption(str(exc), section=name) from exc


def cover_from_sections(
    bodies: Dict[str, Any], metric: Metric
) -> TreeCover:
    """Reassemble a :class:`TreeCover` from verified section bodies.

    Shape problems (missing sections, length mismatches, out-of-range
    ids) raise :class:`~repro.errors.CheckpointCorruption` naming the
    section; the caller is expected to have CRC-verified the bodies
    already.
    """
    header = bodies.get("cover")
    if not isinstance(header, dict):
        raise CheckpointCorruption("missing cover header", section="cover")
    if header.get("n") != metric.n:
        raise CheckpointCorruption(
            f"cover was built for {header.get('n')} points, metric has {metric.n}",
            section="cover",
        )
    num_trees = header.get("num_trees")
    if not isinstance(num_trees, int) or num_trees <= 0:
        raise CheckpointCorruption(
            f"bad tree count {num_trees!r}", section="cover"
        )
    trees: List[CoverTree] = []
    for index in range(num_trees):
        name = tree_section_name(index)
        if name not in bodies:
            raise CheckpointCorruption("section missing", section=name)
        trees.append(_decode_tree_section(bodies[name], name, metric.n))
    home = header.get("home")
    if home is not None:
        if (
            not isinstance(home, list)
            or len(home) != metric.n
            or any(
                not isinstance(t, int) or not 0 <= t < num_trees for t in home
            )
        ):
            raise CheckpointCorruption("malformed home table", section="cover")
    return TreeCover(metric, trees, home=home)


def load_v1_cover(data: Any, metric: Metric) -> Optional[TreeCover]:
    """Decode a legacy v1 payload, or return ``None`` if not v1.

    Shape errors in a recognized v1 payload surface as
    :class:`~repro.errors.CheckpointCorruption` so v1 and v2 loads fail
    uniformly.
    """
    if not isinstance(data, dict) or data.get("format") != V1_COVER_FORMAT:
        return None
    try:
        return cover_from_dict(data, metric)
    except ValueError as exc:
        raise CheckpointCorruption(f"legacy v1 cover: {exc}") from exc
