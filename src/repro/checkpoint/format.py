"""Checkpoint format v2: versioned, checksummed, atomically written.

An envelope (``repro.checkpoint/2``) is a JSON object::

    {
      "format":   "repro.checkpoint/2",
      "kind":     "cover" | "navigator" | "ft_spanner" | "routing_labels",
      "meta":     {...},                     # n, build params, contract
      "sections": {name: {"crc32": int, "body": {...}}, ...},
      "digest":   "<sha256 hex over everything above>"
    }

Every section carries a CRC32 of its canonical JSON encoding, so
corruption is localized to a *named* section (each cover tree is its
own section — the granularity the per-tree recovery of
:mod:`repro.checkpoint.recovery` needs), and the whole file carries a
SHA-256 digest, so any single-byte change anywhere is detected.  Writes
go through :func:`repro.io.atomic_write_json` (tempfile +
``os.replace``), so a crash mid-save never leaves a torn file.

This module is purely about *format* integrity and shape: every failure
raises :class:`~repro.errors.CheckpointCorruption`.  Whether the decoded
structure still satisfies the paper's invariants is the job of
:mod:`repro.checkpoint.audit`.

Backward compatibility: :func:`load_cover_checkpoint` transparently
accepts the unchecksummed v1 format of :mod:`repro.io`
(``repro.treecover/1``); v1 files get shape validation and a structural
audit, just no checksum verification (there is nothing to verify).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CheckpointCorruption
from ..io import (
    V1_COVER_FORMAT,
    atomic_write_json,
    cover_from_dict,
    cover_tree_from_dict,
    tree_to_dict,
)
from ..metrics.base import Metric
from ..treecover.base import CoverTree, TreeCover

__all__ = [
    "CHECKPOINT_FORMAT",
    "KINDS",
    "canonical_bytes",
    "section_crc",
    "make_envelope",
    "open_envelope",
    "peek_envelope",
    "read_checkpoint_file",
    "write_checkpoint_file",
    "cover_sections",
    "cover_from_sections",
    "load_v1_cover",
    "tree_section_name",
]

CHECKPOINT_FORMAT = "repro.checkpoint/2"
KINDS = ("cover", "navigator", "ft_spanner", "routing_labels")


# ----------------------------------------------------------------------
# Canonical encoding and checksums

def canonical_bytes(obj: Any) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, UTF-8.

    Checksums are computed over this encoding, so they are insensitive
    to how the surrounding file was pretty-printed and to the
    tuple-vs-list distinction of the in-memory payload.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def section_crc(body: Any) -> int:
    return zlib.crc32(canonical_bytes(body)) & 0xFFFFFFFF


def _digest(core: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_bytes(core)).hexdigest()


# ----------------------------------------------------------------------
# Envelope assembly and verification

def make_envelope(
    kind: str, meta: Dict[str, Any], sections: Dict[str, Any]
) -> Dict[str, Any]:
    """Wrap section bodies with per-section CRCs and a file digest."""
    if kind not in KINDS:
        raise ValueError(f"unknown checkpoint kind {kind!r}")
    wrapped = {
        name: {"crc32": section_crc(body), "body": body}
        for name, body in sections.items()
    }
    core = {
        "format": CHECKPOINT_FORMAT,
        "kind": kind,
        "meta": meta,
        "sections": wrapped,
    }
    return {**core, "digest": _digest(core)}


def peek_envelope(
    data: Any,
) -> Tuple[str, Dict[str, Any], Dict[str, Any], List[str]]:
    """Partially verify an envelope, reporting damage instead of raising.

    Returns ``(kind, meta, good_bodies, bad_sections)`` where
    ``good_bodies`` maps section names whose CRC verified to their
    bodies, and ``bad_sections`` lists the names that failed (missing
    crc/body fields count as failed).  The whole-file digest is *not*
    required to pass — this is the entry point for per-section salvage
    in the recovery orchestrator.  Raises
    :class:`~repro.errors.CheckpointCorruption` only when the envelope
    itself is unusable (not a dict, wrong format tag, unparseable
    section table).
    """
    if not isinstance(data, dict):
        raise CheckpointCorruption("checkpoint payload is not a JSON object")
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorruption(
            f"format tag {data.get('format')!r} is not {CHECKPOINT_FORMAT!r}"
        )
    kind = data.get("kind")
    if kind not in KINDS:
        raise CheckpointCorruption(f"unknown checkpoint kind {kind!r}")
    meta = data.get("meta")
    if not isinstance(meta, dict):
        raise CheckpointCorruption("meta is not an object")
    table = data.get("sections")
    if not isinstance(table, dict) or not table:
        raise CheckpointCorruption("sections table missing or empty")
    good: Dict[str, Any] = {}
    bad: List[str] = []
    for name, entry in table.items():
        if (
            not isinstance(entry, dict)
            or "body" not in entry
            or not isinstance(entry.get("crc32"), int)
            or section_crc(entry["body"]) != entry["crc32"]
        ):
            bad.append(name)
        else:
            good[name] = entry["body"]
    return kind, meta, good, sorted(bad)


def open_envelope(data: Any) -> Tuple[str, Dict[str, Any], Dict[str, Any]]:
    """Fully verify an envelope: digest plus every section CRC.

    Returns ``(kind, meta, bodies)``; raises
    :class:`~repro.errors.CheckpointCorruption` on the first failed
    check, naming the offending section when the damage is localized.
    """
    kind, meta, good, bad = peek_envelope(data)
    if bad:
        raise CheckpointCorruption("CRC32 mismatch", section=bad[0])
    recorded = data.get("digest")
    core = {key: data[key] for key in ("format", "kind", "meta", "sections")}
    actual = _digest(core)
    if recorded != actual:
        raise CheckpointCorruption(
            f"file digest mismatch: recorded {recorded!r}, computed {actual!r}"
        )
    return kind, meta, good


# ----------------------------------------------------------------------
# File I/O

def write_checkpoint_file(envelope: Dict[str, Any], path: str) -> None:
    """Atomically persist an envelope (tempfile + ``os.replace``).

    Envelopes are written in *canonical* form — the same encoding the
    checksums are computed over — so the file has no insignificant
    whitespace and every single byte is covered by a checksum: any
    one-byte change either breaks the JSON, trips a CRC/digest, or
    invalidates the format tag.
    """
    atomic_write_json(envelope, path, canonical=True)


def read_checkpoint_file(path: str) -> Dict[str, Any]:
    """Read raw checkpoint JSON; unparseable files raise
    :class:`~repro.errors.CheckpointCorruption`."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruption(f"cannot read checkpoint {path!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Cover payloads (shared by every checkpoint kind: navigators, FT
# spanners and routing labels all embed the cover they were built from)

def tree_section_name(index: int) -> str:
    return f"tree/{index:04d}"


def cover_sections(cover: TreeCover) -> Dict[str, Any]:
    """One section per cover tree plus a ``cover`` header section.

    The per-tree granularity is what makes single-tree corruption
    detectable — and repairable — without touching the other trees.
    """
    sections: Dict[str, Any] = {
        "cover": {
            "n": cover.metric.n,
            "num_trees": cover.size,
            "home": cover.home,
        }
    }
    for index, cover_tree in enumerate(cover.trees):
        sections[tree_section_name(index)] = {
            "tree": tree_to_dict(cover_tree.tree),
            "vertex_of_point": list(cover_tree.vertex_of_point),
            "rep_point": list(cover_tree.rep_point),
        }
    return sections


def _decode_tree_section(body: Any, name: str, n_points: int) -> CoverTree:
    try:
        return cover_tree_from_dict(body, n_points)
    except ValueError as exc:
        raise CheckpointCorruption(str(exc), section=name) from exc


def cover_from_sections(
    bodies: Dict[str, Any], metric: Metric
) -> TreeCover:
    """Reassemble a :class:`TreeCover` from verified section bodies.

    Shape problems (missing sections, length mismatches, out-of-range
    ids) raise :class:`~repro.errors.CheckpointCorruption` naming the
    section; the caller is expected to have CRC-verified the bodies
    already.
    """
    header = bodies.get("cover")
    if not isinstance(header, dict):
        raise CheckpointCorruption("missing cover header", section="cover")
    if header.get("n") != metric.n:
        raise CheckpointCorruption(
            f"cover was built for {header.get('n')} points, metric has {metric.n}",
            section="cover",
        )
    num_trees = header.get("num_trees")
    if not isinstance(num_trees, int) or num_trees <= 0:
        raise CheckpointCorruption(
            f"bad tree count {num_trees!r}", section="cover"
        )
    trees: List[CoverTree] = []
    for index in range(num_trees):
        name = tree_section_name(index)
        if name not in bodies:
            raise CheckpointCorruption("section missing", section=name)
        trees.append(_decode_tree_section(bodies[name], name, metric.n))
    home = header.get("home")
    if home is not None:
        if (
            not isinstance(home, list)
            or len(home) != metric.n
            or any(
                not isinstance(t, int) or not 0 <= t < num_trees for t in home
            )
        ):
            raise CheckpointCorruption("malformed home table", section="cover")
    return TreeCover(metric, trees, home=home)


def load_v1_cover(data: Any, metric: Metric) -> Optional[TreeCover]:
    """Decode a legacy v1 payload, or return ``None`` if not v1.

    Shape errors in a recognized v1 payload surface as
    :class:`~repro.errors.CheckpointCorruption` so v1 and v2 loads fail
    uniformly.
    """
    if not isinstance(data, dict) or data.get("format") != V1_COVER_FORMAT:
        return None
    try:
        return cover_from_dict(data, metric)
    except ValueError as exc:
        raise CheckpointCorruption(f"legacy v1 cover: {exc}") from exc
