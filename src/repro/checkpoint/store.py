"""Save/load entry points for every checkpointable artifact.

One function pair per artifact kind.  Every ``save_*`` writes a
checksummed v2 envelope atomically; every ``load_*`` verifies the
envelope (digest + per-section CRC32), decodes with shape validation,
and — unless ``audit=False`` — runs the structural auditor before
returning, so a successful load *is* a certificate that the structure
still satisfies the paper's invariants.  Failures are always typed:
:class:`~repro.errors.CheckpointCorruption` for format damage,
:class:`~repro.errors.InvariantViolation` for semantic damage.

The artifact kinds mirror the expensive structures of the repo:

========  =====================================================
kind      persisted state
========  =====================================================
cover     the (γ, ζ)-tree cover (Theorems 4.1 / Table 1)
navigator cover + k + per-tree 1-spanner fingerprints (𝒟_T)
ft        cover + f, k + the replica pools R(v) (Theorem 4.2)
labels    cover + per-tree heavy-path distance label tables
========  =====================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.metric_navigator import MetricNavigator
from ..errors import CheckpointCorruption
from ..metrics.base import Metric
from ..observability import OBS, trace
from ..routing.labels import (
    HeavyPathLabeling,
    label_from_jsonable,
    label_to_jsonable,
)
from ..spanners.fault_tolerant import FaultTolerantSpanner
from ..treecover.base import TreeCover
from .audit import (
    AuditReport,
    CoverContract,
    audit_cover,
    audit_ft_spanner,
    audit_labels,
    audit_navigator,
)
from .format import (
    RAW_SECTION,
    cover_from_sections,
    cover_sections,
    load_mapped_arrays,
    load_v1_cover,
    make_envelope,
    open_envelope,
    raw_array_table,
    read_checkpoint_file,
    write_checkpoint_file,
)

__all__ = [
    "save_cover_checkpoint",
    "load_cover_checkpoint",
    "save_navigator_checkpoint",
    "load_navigator_checkpoint",
    "save_ft_checkpoint",
    "load_ft_checkpoint",
    "save_labels_checkpoint",
    "load_labels_checkpoint",
    "audit_checkpoint",
    "cover_labelings",
]

_C_MAPPED_LOADS = OBS.registry.counter("checkpoint.mapped_loads")


def _meta(
    n: int,
    contract: Optional[CoverContract],
    builder: Optional[Dict[str, Any]],
    **extra: Any,
) -> Dict[str, Any]:
    meta: Dict[str, Any] = {"n": n, **extra}
    meta["contract"] = contract.to_jsonable() if contract is not None else None
    meta["builder"] = builder
    return meta


def _contract_from_meta(
    meta: Dict[str, Any], override: Optional[CoverContract]
) -> Optional[CoverContract]:
    if override is not None:
        return override
    return CoverContract.from_jsonable(meta.get("contract"))


def _expect_kind(kind: str, expected: str) -> None:
    if kind != expected:
        raise CheckpointCorruption(
            f"checkpoint holds a {kind!r} artifact, expected {expected!r}"
        )


def _int_field(meta: Dict[str, Any], name: str) -> int:
    value = meta.get(name)
    if not isinstance(value, int) or value < 0:
        raise CheckpointCorruption(f"meta field {name!r} is {value!r}")
    return value


# ----------------------------------------------------------------------
# Covers

def save_cover_checkpoint(
    cover: TreeCover,
    path: str,
    contract: Optional[CoverContract] = None,
    builder: Optional[Dict[str, Any]] = None,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Persist a cover as a v2 envelope; returns the envelope written.

    ``extra_meta`` entries ride in the envelope's meta block alongside
    ``contract``/``builder`` — the dynamic-mutation layer stores its
    ``dynamic`` state descriptor there when compacting a journal.
    """
    envelope = make_envelope(
        "cover",
        _meta(cover.metric.n, contract, builder, **(extra_meta or {})),
        cover_sections(cover),
    )
    write_checkpoint_file(envelope, path)
    return envelope

def load_cover_checkpoint(
    path: str,
    metric: Metric,
    contract: Optional[CoverContract] = None,
    audit: bool = True,
) -> TreeCover:
    """Load + verify + audit a cover checkpoint (v2 or legacy v1)."""
    data = read_checkpoint_file(path)
    v1 = load_v1_cover(data, metric)
    if v1 is not None:
        if audit:
            audit_cover(v1, contract=contract)
        return v1
    kind, meta, bodies = open_envelope(data)
    _expect_kind(kind, "cover")
    cover = cover_from_sections(bodies, metric)
    if audit:
        audit_cover(cover, contract=_contract_from_meta(meta, contract))
    return cover


# ----------------------------------------------------------------------
# Navigators

def save_navigator_checkpoint(
    navigator: MetricNavigator,
    path: str,
    contract: Optional[CoverContract] = None,
    builder: Optional[Dict[str, Any]] = None,
    packed: bool = False,
) -> Dict[str, Any]:
    """Persist a navigator: its cover, k, and the 𝒟_T fingerprints.

    The navigation structures rebuild deterministically from the cover,
    so only their fingerprint is stored; the loader rebuilds and checks
    the rebuild against it.

    With ``packed=True`` the file additionally carries the flat query
    arrays (tree-selection index + per-tree query packs) in a raw
    binary region after the JSON envelope, so loaders can attach with
    ``mmap=True`` — no rebuild, and N processes share one physical copy
    of the query state.  Such files remain loadable by every pre-packed
    reader: the envelope is still the first line of the file and
    non-mapped loads ignore the raw region entirely.
    """
    sections = cover_sections(navigator.cover)
    sections["aux"] = navigator.aux_fingerprint()
    arrays = None
    if packed:
        from ..core.mapped_navigator import navigator_arrays

        arrays = navigator_arrays(navigator)
        sections[RAW_SECTION] = raw_array_table(arrays)
    envelope = make_envelope(
        "navigator",
        _meta(navigator.metric.n, contract, builder, k=navigator.k),
        sections,
    )
    write_checkpoint_file(envelope, path, arrays=arrays)
    return envelope


def load_navigator_checkpoint(
    path: str,
    metric: Metric,
    contract: Optional[CoverContract] = None,
    audit: bool = True,
    mmap: bool = False,
):
    """Load a navigator checkpoint; returns a query-ready navigator.

    Default mode rebuilds a full :class:`MetricNavigator` from the
    stored cover and audits it against the saved fingerprint.  With
    ``mmap=True`` (requires a file written with ``packed=True``) no
    rebuild happens: the raw query arrays are CRC-verified once, then
    memory-mapped read-only, and a
    :class:`~repro.core.mapped_navigator.PackedMetricNavigator` is
    returned — same query answers, a fraction of the load time, and
    one shared physical copy across processes.  Mapped loads skip the
    structural audit (there is no rebuilt object graph to audit; the
    arrays are integrity-checked instead).
    """
    data = read_checkpoint_file(path)
    kind, meta, bodies = open_envelope(data)
    _expect_kind(kind, "navigator")
    k = _int_field(meta, "k")
    if k < 2:
        raise CheckpointCorruption(f"meta field 'k' is {k}, need k >= 2")
    if mmap:
        from ..core.mapped_navigator import PackedMetricNavigator

        table = bodies.get(RAW_SECTION)
        if not isinstance(table, dict):
            raise CheckpointCorruption(
                "checkpoint has no raw-array region (save with "
                "packed=True to serve memory-mapped)",
                section=RAW_SECTION,
            )
        if meta.get("n") != metric.n:
            raise CheckpointCorruption(
                f"checkpoint was built for {meta.get('n')} points, "
                f"metric has {metric.n}"
            )
        with trace("checkpoint.map_arrays", path=path, n=metric.n):
            arrays = load_mapped_arrays(path, table)
            navigator = PackedMetricNavigator(metric, k, arrays)
        if OBS.enabled:
            _C_MAPPED_LOADS.inc()
        return navigator
    cover = cover_from_sections(bodies, metric)
    fingerprint = bodies.get("aux")
    if not isinstance(fingerprint, dict):
        raise CheckpointCorruption("missing navigator aux state", section="aux")
    navigator = MetricNavigator(metric, cover, k)
    if audit:
        audit_navigator(
            navigator,
            contract=_contract_from_meta(meta, contract),
            fingerprint=fingerprint,
        )
    else:
        navigator.verify_aux_fingerprint(fingerprint)
    return navigator


# ----------------------------------------------------------------------
# FT spanners

def save_ft_checkpoint(
    spanner: FaultTolerantSpanner,
    path: str,
    contract: Optional[CoverContract] = None,
    builder: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Persist an f-FT spanner: cover, (f, k), and the R(v) pools."""
    sections = cover_sections(spanner.cover)
    sections["replicas"] = {"pools": spanner.replicas}
    envelope = make_envelope(
        "ft_spanner",
        _meta(spanner.metric.n, contract, builder, f=spanner.f, k=spanner.k),
        sections,
    )
    write_checkpoint_file(envelope, path)
    return envelope


def _decode_replicas(body: Any, num_trees: int) -> List[List[List[int]]]:
    if not isinstance(body, dict):
        raise CheckpointCorruption("replica section is not an object",
                                   section="replicas")
    pools = body.get("pools")
    if not isinstance(pools, list) or len(pools) != num_trees:
        raise CheckpointCorruption(
            f"replica table covers {len(pools) if isinstance(pools, list) else '?'} "
            f"of {num_trees} trees",
            section="replicas",
        )
    for t, per_tree in enumerate(pools):
        if not isinstance(per_tree, list):
            raise CheckpointCorruption(
                f"tree {t} replica table is not a list", section="replicas"
            )
        for v, pool in enumerate(per_tree):
            if not isinstance(pool, list) or not all(
                isinstance(p, int) for p in pool
            ):
                raise CheckpointCorruption(
                    f"tree {t} vertex {v} pool is not a list of ints",
                    section="replicas",
                )
    return pools


def load_ft_checkpoint(
    path: str,
    metric: Metric,
    contract: Optional[CoverContract] = None,
    audit: bool = True,
) -> FaultTolerantSpanner:
    data = read_checkpoint_file(path)
    kind, meta, bodies = open_envelope(data)
    _expect_kind(kind, "ft_spanner")
    f = _int_field(meta, "f")
    k = _int_field(meta, "k")
    cover = cover_from_sections(bodies, metric)
    replicas = _decode_replicas(bodies.get("replicas"), cover.size)
    spanner = FaultTolerantSpanner(
        metric, f=f, k=k, cover=cover, replicas=replicas, validate=False
    )
    if audit:
        audit_ft_spanner(spanner, contract=_contract_from_meta(meta, contract))
    return spanner


# ----------------------------------------------------------------------
# Routing label tables

def cover_labelings(cover: TreeCover) -> List[List[tuple]]:
    """Per-tree heavy-path distance labels of every point's host vertex
    (the [FGNW17]-substitute labels of the Section 5 routing schemes)."""
    tables: List[List[tuple]] = []
    for cover_tree in cover.trees:
        labeling = HeavyPathLabeling(cover_tree.tree)
        tables.append(
            [labeling.label(v) for v in cover_tree.vertex_of_point]
        )
    return tables


def _labels_section_name(index: int) -> str:
    return f"labels/{index:04d}"


def save_labels_checkpoint(
    cover: TreeCover,
    path: str,
    labels_per_tree: Optional[List[List[tuple]]] = None,
    contract: Optional[CoverContract] = None,
    builder: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Persist routing label tables together with their cover.

    ``labels_per_tree`` defaults to freshly computed
    :func:`cover_labelings`; one section per tree keeps corruption
    localized exactly like the cover's tree sections.
    """
    if labels_per_tree is None:
        labels_per_tree = cover_labelings(cover)
    sections = cover_sections(cover)
    for index, table in enumerate(labels_per_tree):
        sections[_labels_section_name(index)] = {
            "labels": [label_to_jsonable(label) for label in table]
        }
    envelope = make_envelope(
        "routing_labels",
        _meta(cover.metric.n, contract, builder),
        sections,
    )
    write_checkpoint_file(envelope, path)
    return envelope


def load_labels_checkpoint(
    path: str,
    metric: Metric,
    contract: Optional[CoverContract] = None,
    audit: bool = True,
) -> Tuple[TreeCover, List[List[tuple]]]:
    """Load + verify + audit routing labels; returns (cover, tables)."""
    data = read_checkpoint_file(path)
    kind, meta, bodies = open_envelope(data)
    _expect_kind(kind, "routing_labels")
    cover = cover_from_sections(bodies, metric)
    tables: List[List[tuple]] = []
    for index in range(cover.size):
        name = _labels_section_name(index)
        body = bodies.get(name)
        if not isinstance(body, dict) or not isinstance(body.get("labels"), list):
            raise CheckpointCorruption("label table missing", section=name)
        raw = body["labels"]
        if len(raw) != metric.n:
            raise CheckpointCorruption(
                f"{len(raw)} labels for {metric.n} points", section=name
            )
        try:
            tables.append([label_from_jsonable(item) for item in raw])
        except ValueError as exc:
            raise CheckpointCorruption(str(exc), section=name) from exc
    if audit:
        audit_cover(cover, contract=_contract_from_meta(meta, contract))
        audit_labels(cover, tables)
    return cover, tables


# ----------------------------------------------------------------------
# On-demand audit (the ``python -m repro audit`` entry point)

def audit_checkpoint(
    path: str,
    metric: Metric,
    contract: Optional[CoverContract] = None,
    workers: Optional[int] = None,
) -> AuditReport:
    """Verify + audit whatever artifact the file holds; returns the report.

    Dispatches on the envelope's ``kind`` (legacy v1 files audit as
    covers).  Raises the same typed errors as the ``load_*`` functions.
    ``workers`` fans the per-tree audit work out across processes.
    """
    data = read_checkpoint_file(path)
    v1 = load_v1_cover(data, metric)
    if v1 is not None:
        return audit_cover(v1, contract=contract, workers=workers)
    kind, meta, _ = open_envelope(data)
    if kind == "cover":
        return audit_cover(
            load_cover_checkpoint(path, metric, contract=contract, audit=False),
            contract=_contract_from_meta(meta, contract),
            workers=workers,
        )
    if kind == "navigator":
        navigator = load_navigator_checkpoint(
            path, metric, contract=contract, audit=False
        )
        _, _, bodies = open_envelope(data)
        return audit_navigator(
            navigator,
            contract=_contract_from_meta(meta, contract),
            fingerprint=bodies.get("aux"),
            workers=workers,
        )
    if kind == "ft_spanner":
        spanner = load_ft_checkpoint(path, metric, contract=contract, audit=False)
        return audit_ft_spanner(
            spanner, contract=_contract_from_meta(meta, contract), workers=workers
        )
    cover, tables = load_labels_checkpoint(
        path, metric, contract=contract, audit=False
    )
    report = audit_cover(
        cover, contract=_contract_from_meta(meta, contract), workers=workers
    )
    labels_report = audit_labels(cover, tables)
    report.kind = "routing_labels"
    report.checks.extend(labels_report.checks)
    return report
