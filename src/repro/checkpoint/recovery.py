"""Recovery orchestrator: repair what failed the audit, label the rest.

Loading a damaged checkpoint through :mod:`repro.checkpoint.store`
raises; production deployments (ROADMAP north star) want the
alternative this module provides — *recover automatically and say
exactly what happened*:

1. **Per-tree repair.**  Checkpoints store one section per cover tree,
   so CRC failures, shape failures and per-tree audit failures are
   localized to tree indexes.  Only those trees are dropped and rebuilt
   (from a deterministic reference build of the same metric); the
   surviving ζ − 1 sections are trusted as-is after their audit, and
   derived LCA/level-ancestor state is recomputed for swapped trees.
2. **Full rebuild.**  If the envelope is unreadable, the header section
   is lost, the tree count changed, or the repaired cover still fails
   its contract audit, the cover is rebuilt from the metric outright.
3. **Degraded service.**  :class:`CheckpointService` integrates with
   :mod:`repro.resilience.degradation`: it starts answering queries
   from the surviving trees immediately — every answer labelled as a
   :class:`~repro.resilience.degradation.DegradedResult` with
   ``degraded=True`` while recovery is pending — and promotes itself to
   full-guarantee service once :meth:`CheckpointService.recover`
   finishes and the audit passes.

Every outcome is recorded in a :class:`RecoveryReport`; nothing is
repaired silently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.metric_navigator import MetricNavigator
from ..errors import CheckpointCorruption, ReproError
from ..metrics.base import Metric, sample_pairs
from ..observability import OBS, trace
from ..parallel import map_per_tree
from ..resilience.degradation import DegradedResult
from ..treecover.base import CoverTree, TreeCover
from .audit import CoverContract, audit_cover, audit_cover_tree
from .format import (
    cover_from_sections,
    load_v1_cover,
    peek_envelope,
    read_checkpoint_file,
    tree_section_name,
)
from .store import save_cover_checkpoint

__all__ = [
    "CoverBuilder",
    "TreeRepair",
    "RecoveryReport",
    "builder_from_meta",
    "recover_cover",
    "CheckpointService",
]

#: A cover builder: metric in, freshly constructed cover out.
CoverBuilder = Callable[[Metric], TreeCover]

# One counter per RecoveryReport outcome plus per-tree kept/rebuilt
# totals — the checkpoint-audit-outcome telemetry of the north star.
_C_OUTCOMES = {
    "clean": OBS.registry.counter("recovery.outcome.clean"),
    "per-tree-repair": OBS.registry.counter("recovery.outcome.per_tree_repair"),
    "full-rebuild": OBS.registry.counter("recovery.outcome.full_rebuild"),
}
_C_KEPT = OBS.registry.counter("recovery.trees_kept")
_C_REBUILT = OBS.registry.counter("recovery.trees_rebuilt")
_C_SVC_QUERIES = OBS.registry.counter("recovery.service.queries")
_C_SVC_DEGRADED = OBS.registry.counter("recovery.service.degraded")
_C_SVC_UNDELIVERED = OBS.registry.counter("recovery.service.undelivered")


def _record_report(report: "RecoveryReport") -> "RecoveryReport":
    if OBS.enabled:
        counter = _C_OUTCOMES.get(report.outcome)
        if counter is not None:
            counter.inc()
        for repair in report.repairs:
            (_C_KEPT if repair.action == "kept" else _C_REBUILT).inc()
    return report


@dataclass
class TreeRepair:
    """What happened to one cover tree during recovery."""

    index: int
    action: str  # "kept" | "rebuilt"
    reason: str = ""


@dataclass
class RecoveryReport:
    """The labelled outcome of one recovery attempt.

    ``outcome`` is ``"clean"`` (checkpoint loaded and audited, nothing
    to repair), ``"per-tree-repair"`` (only the named trees were
    rebuilt) or ``"full-rebuild"`` (the checkpoint was unusable and the
    cover was rebuilt from the metric).
    """

    outcome: str
    cover: TreeCover
    repairs: List[TreeRepair] = field(default_factory=list)
    reason: str = ""

    @property
    def rebuilt_indexes(self) -> List[int]:
        return [r.index for r in self.repairs if r.action == "rebuilt"]

    def format_summary(self) -> str:
        if self.outcome == "clean":
            return f"recovery: clean load, {self.cover.size} trees audited"
        if self.outcome == "per-tree-repair":
            rebuilt = self.rebuilt_indexes
            return (
                f"recovery: per-tree repair rebuilt {len(rebuilt)} of "
                f"{self.cover.size} trees ({rebuilt}); "
                f"{self.cover.size - len(rebuilt)} kept from checkpoint"
            )
        return f"recovery: full rebuild ({self.reason})"


def builder_from_meta(meta: Dict[str, Any]) -> Optional[CoverBuilder]:
    """Reconstruct the cover builder recorded in checkpoint ``meta``.

    Checkpoints written through the CLI carry ``builder`` metadata like
    ``{"family": "robust", "eps": 0.45}``; this turns it back into a
    callable so recovery can rebuild without the caller re-supplying
    construction parameters.  Unknown or missing metadata returns
    ``None`` (the caller must then pass an explicit builder).
    """
    spec = meta.get("builder")
    if not isinstance(spec, dict):
        return None
    family = spec.get("family")
    inner: Optional[CoverBuilder] = None
    if family == "robust":
        eps = float(spec.get("eps", 0.45))
        from ..treecover.dumbbell import robust_tree_cover

        inner = lambda metric: robust_tree_cover(metric, eps=eps)
    elif family == "compact":
        eps = float(spec.get("eps", 0.5))
        shifts = int(spec.get("shifts", 4))
        from ..treecover.compact import compact_tree_cover

        inner = lambda metric: compact_tree_cover(metric, eps=eps, shifts=shifts)
    elif family == "ramsey":
        ell = int(spec.get("ell", 2))
        seed = int(spec.get("seed", 0))
        from ..treecover.ramsey import ramsey_tree_cover

        inner = lambda metric: ramsey_tree_cover(metric, ell=ell, seed=seed)
    elif family == "planar":
        from ..treecover.planar import planar_tree_cover

        inner = lambda metric: planar_tree_cover(metric)
    if inner is None:
        return None
    pruned = spec.get("pruned")
    if isinstance(pruned, dict):
        # Replay the prune exactly as the CLI ran it: the greedy pass is
        # deterministic for fixed (eps, seed, max_pairs), so the rebuilt
        # cover's tree indexes line up with the checkpoint's — which is
        # what lets per-tree repair pull tree i out of a pruned rebuild.
        p_eps = float(pruned.get("eps", 0.05))
        p_seed = int(pruned.get("seed", 0))
        p_max = int(pruned.get("max_pairs", 0)) or None
        from ..treecover.prune import DEFAULT_MAX_PAIRS, prune_cover

        base_builder = inner

        def _pruned_builder(metric):
            report = prune_cover(
                base_builder(metric),
                eps=p_eps,
                seed=p_seed,
                max_pairs=p_max or DEFAULT_MAX_PAIRS,
            )
            return report.cover

        return _pruned_builder
    return inner


def _dynamic_metric(base: Metric, dyn_meta: Dict[str, Any]) -> Metric:
    """The full (append-only) metric a compacted dynamic checkpoint uses.

    ``dyn_meta`` is the ``dynamic`` meta block a ``compact`` wrote: the
    base point set plus any points appended since, with the active set
    listed separately (tombstones stay in the index space).
    """
    import numpy as np

    from ..metrics.euclidean import EuclideanMetric

    points = getattr(base, "points", None)
    if points is None:
        raise ValueError(
            "dynamic checkpoints require a coordinate-backed (Euclidean) "
            f"base metric, got {type(base).__name__}"
        )
    extra = dyn_meta.get("extra_points") or []
    coords = points
    if extra:
        coords = np.vstack([points, np.asarray(extra, dtype=float)])
    return EuclideanMetric(coords)


def _op_from_record(record) -> Tuple[str, Any]:
    """Decode one journal record into a ``DynamicRobustCover.apply`` op."""
    if record.op == "insert":
        return ("insert", record["point"])
    if record.op == "delete":
        return ("delete", int(record["point_id"]))
    raise CheckpointCorruption(f"journal holds unknown op {record.op!r}")


def _salvage_sections(
    path: str, metric: Metric
) -> Tuple[Dict[str, Any], Dict[str, Any], List[str]]:
    """Read a v2 envelope leniently: (meta, good bodies, bad sections)."""
    data = read_checkpoint_file(path)
    v1 = load_v1_cover(data, metric)  # raises CheckpointCorruption if torn
    if v1 is not None:
        # Legacy files have no sections to salvage individually; wrap
        # the decoded cover as pseudo-sections so repair can still run
        # per tree on audit failures.
        bodies: Dict[str, Any] = {
            "cover": {"n": metric.n, "num_trees": v1.size, "home": v1.home}
        }
        for index, cover_tree in enumerate(v1.trees):
            bodies[tree_section_name(index)] = cover_tree
        return {}, bodies, []
    _, meta, good, bad = peek_envelope(data)
    return meta, good, bad


def _audit_one_tree(
    cover_tree: CoverTree, metric: Metric, pairs
) -> Optional[str]:
    """Audit a single tree; returns the failure reason or ``None``."""
    try:
        audit_cover_tree(cover_tree, metric)
        cover_tree.check_dominating(metric, pairs)
    except ReproError as exc:
        return str(exc)
    return None


def _classify_tree_task(ctx, task) -> Tuple[Optional[CoverTree], str]:
    """Per-tree fan-out unit: decode + audit one checkpoint section.

    ``task`` is ``(body, reason)`` where a ``None`` body carries a
    precomputed envelope-level failure reason (CRC mismatch, missing
    section).  Returns ``(cover_tree, "")`` when the tree survives, or
    ``(None, reason)`` when it must be rebuilt.
    """
    body, reason = task
    if body is None:
        return None, reason
    metric = ctx.metric
    pairs = ctx.payload
    if isinstance(body, CoverTree):  # salvaged v1 payload
        cover_tree = body
    else:
        try:
            cover_tree = cover_from_sections(
                {"cover": {"n": metric.n, "num_trees": 1, "home": None},
                 tree_section_name(0): body},
                metric,
            ).trees[0]
        except CheckpointCorruption as exc:
            return None, f"shape: {exc}"
    audit_failure = _audit_one_tree(cover_tree, metric, pairs)
    if audit_failure is not None:
        return None, f"audit: {audit_failure}"
    return cover_tree, ""


def recover_cover(
    path: str,
    metric: Metric,
    builder: Optional[CoverBuilder] = None,
    contract: Optional[CoverContract] = None,
    sample: int = 200,
    seed: int = 0,
    resave: bool = False,
    workers: Optional[int] = None,
) -> RecoveryReport:
    """Load a cover checkpoint, repairing or rebuilding as needed.

    Never raises for a damaged file: every failure mode downgrades to
    per-tree repair, then to a full rebuild via ``builder`` (explicit,
    or reconstructed from the checkpoint's ``builder`` metadata).  A
    :class:`ValueError` is raised only when a rebuild is needed and no
    builder is available.  With ``resave=True`` a repaired/rebuilt
    cover is written back to ``path`` (atomically) so the next start is
    clean.  ``workers`` fans the per-tree decode + audit classification
    out across processes; the verdicts are identical in every mode.
    """
    with trace("recovery.recover_cover", path=path, n=metric.n):
        return _record_report(
            _recover_cover(
                path, metric, builder, contract, sample, seed, resave, workers
            )
        )


def _recover_cover(
    path: str,
    metric: Metric,
    builder: Optional[CoverBuilder],
    contract: Optional[CoverContract],
    sample: int,
    seed: int,
    resave: bool,
    workers: Optional[int],
) -> RecoveryReport:
    pairs = sample_pairs(metric.n, sample, seed=seed)

    def full_rebuild(reason: str, meta: Dict[str, Any]) -> RecoveryReport:
        rebuilder = builder if builder is not None else builder_from_meta(meta)
        if rebuilder is None:
            raise ValueError(
                f"checkpoint {path!r} needs a full rebuild ({reason}) "
                "but no cover builder is available"
            )
        cover = rebuilder(metric)
        audit_cover(cover, contract=contract, pairs=pairs, workers=workers)
        report = RecoveryReport("full-rebuild", cover, reason=reason)
        if resave:
            save_cover_checkpoint(
                report.cover, path, contract=contract,
                builder=meta.get("builder"),
            )
        return report

    try:
        meta, bodies, bad_sections = _salvage_sections(path, metric)
    except CheckpointCorruption as exc:
        return full_rebuild(f"unreadable checkpoint: {exc}", {})

    if contract is None:
        # Hold the repaired cover to whatever the checkpoint declared.
        contract = CoverContract.from_jsonable(meta.get("contract"))

    header = bodies.get("cover")
    num_trees = header.get("num_trees") if isinstance(header, dict) else None
    if "cover" in bad_sections or not isinstance(num_trees, int) or num_trees <= 0:
        return full_rebuild("cover header section lost", meta)

    # Classify every tree: decodable + individually audited, or corrupt.
    # Envelope-level failures are resolved here (cheap, needs the bad
    # section table); decode + audit fan out per tree.
    tasks: List[Tuple[Any, str]] = []
    for index in range(num_trees):
        name = tree_section_name(index)
        if name in bad_sections:
            tasks.append((None, "CRC32 mismatch"))
        elif name not in bodies:
            tasks.append((None, "section missing"))
        else:
            tasks.append((bodies[name], ""))
    classified = map_per_tree(
        _classify_tree_task, tasks, workers=workers, metric=metric, payload=pairs
    )
    repairs: List[TreeRepair] = []
    trees: List[Optional[CoverTree]] = []
    for index, (cover_tree, reason) in enumerate(classified):
        trees.append(cover_tree)
        repairs.append(
            TreeRepair(index, "kept" if cover_tree is not None else "rebuilt",
                       reason)
        )

    corrupted = [r.index for r in repairs if r.action == "rebuilt"]
    home = header.get("home") if isinstance(header, dict) else None
    if (
        home is not None
        and not (
            isinstance(home, list)
            and len(home) == metric.n
            and all(isinstance(t, int) and 0 <= t < num_trees for t in home)
        )
    ):
        return full_rebuild("home table corrupted", meta)

    if corrupted:
        if len(corrupted) == num_trees:
            return full_rebuild("every tree section corrupted", meta)
        rebuilder = builder if builder is not None else builder_from_meta(meta)
        if rebuilder is None:
            raise ValueError(
                f"checkpoint {path!r} has corrupted trees {corrupted} "
                "but no cover builder is available for per-tree repair"
            )
        reference = rebuilder(metric)
        if reference.size != num_trees:
            return full_rebuild(
                f"reference build has {reference.size} trees, checkpoint "
                f"had {num_trees}",
                meta,
            )
        for index in corrupted:
            trees[index] = reference.trees[index]

    cover = TreeCover(metric, list(trees), home=home)
    for index in corrupted:
        cover.replace_tree(index, cover.trees[index])  # reset derived state
    try:
        audit_cover(cover, contract=contract, pairs=pairs, workers=workers)
    except ReproError as exc:
        return full_rebuild(f"repaired cover still fails audit: {exc}", meta)

    outcome = "per-tree-repair" if corrupted else "clean"
    report = RecoveryReport(outcome, cover, repairs=repairs)
    if resave and corrupted:
        save_cover_checkpoint(
            cover, path, contract=contract, builder=meta.get("builder")
        )
    return report


# ----------------------------------------------------------------------
# Degraded service during recovery

class CheckpointService:
    """Serve navigation queries through (and past) checkpoint recovery.

    The operational wrapper the resilience subsystem plugs into: point
    it at a cover checkpoint and it *always* comes up —

    * an intact checkpoint yields full-guarantee service immediately;
    * a damaged one yields **degraded** service from the surviving
      trees (every query labelled via
      :class:`~repro.resilience.degradation.DegradedResult`, Ramsey
      home-tree guarantees suspended) until :meth:`recover` swaps the
      rebuilt trees in and the audit passes.
    """

    def __init__(
        self,
        metric: Metric,
        k: int,
        builder: Optional[CoverBuilder] = None,
        contract: Optional[CoverContract] = None,
        workers: Optional[int] = None,
    ):
        self.metric = metric
        self.k = k
        self.builder = builder
        self.contract = contract
        self.workers = workers
        # The metric the service was constructed with.  In dynamic mode
        # `self.metric` tracks the mutable (append-only) index space;
        # compacted checkpoints record their state relative to this base.
        self._base_metric = metric
        self._path: Optional[str] = None
        self._navigator: Optional[MetricNavigator] = None
        self._pending: List[int] = []
        self._salvaged: List[Optional[CoverTree]] = []
        self._home: Optional[List[int]] = None
        self._meta: Dict[str, Any] = {}
        self.report: Optional[RecoveryReport] = None
        # Concurrency: `_state_lock` guards every read/swap of the
        # (navigator, pending, recovering, generation) tuple so queries
        # see one consistent service level; `_mutate_lock` serializes
        # the heavyweight transitions (load / recover / kill_trees),
        # which do their rebuild work *outside* `_state_lock` so live
        # queries keep flowing off the previous navigator meanwhile.
        self._state_lock = threading.Lock()
        self._mutate_lock = threading.Lock()
        self._recovering = False
        self._mapped = False
        self.generation = 0
        # Dynamic mutation state (ROADMAP item 3): installed by
        # enable_dynamic(), mutated only under `_mutate_lock`.
        self._dynamic = None  # Optional[DynamicRobustCover]
        self._journal = None  # Optional[UpdateJournal]

    # -- state -----------------------------------------------------------

    @property
    def recovery_pending(self) -> bool:
        """True while queries are served without the full contract."""
        with self._state_lock:
            return bool(self._pending) or self._navigator is None

    @property
    def navigator(self) -> Optional[MetricNavigator]:
        return self._navigator

    @property
    def state(self) -> str:
        """One word for the current service level.

        ``ready`` (full contract), ``degraded`` (serving from surviving
        trees), ``recovering`` (degraded with a recovery in flight) or
        ``down`` (nothing salvageable yet).
        """
        with self._state_lock:
            if self._recovering:
                return "recovering"
            if self._navigator is None:
                return "down"
            if self._pending:
                return "degraded"
            return "ready"

    def _status_locked(self) -> Dict[str, Any]:
        if self._recovering:
            state = "recovering"
        elif self._navigator is None:
            state = "down"
        elif self._pending:
            state = "degraded"
        else:
            state = "ready"
        status = {
            "state": state,
            "generation": self.generation,
            "trees_total": len(self._salvaged),
            "trees_pending": len(self._pending),
            "trees_serving": (
                self._navigator.num_trees
                if self._navigator is not None else 0
            ),
            "mapped": self._mapped,
            "dynamic": self._dynamic is not None,
        }
        if self._dynamic is not None:
            status["active_points"] = len(self._dynamic.active)
            status["applied_seq"] = self._dynamic.applied_seq
            status["journal_records"] = (
                len(self._journal) if self._journal is not None else 0
            )
        return status

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the service level (for envelopes)."""
        with self._state_lock:
            return self._status_locked()

    def snapshot(self) -> Tuple[Optional[MetricNavigator], Dict[str, Any]]:
        """The serving navigator plus the status that describes *it*.

        Both come from one critical section, so a batch executed on the
        returned navigator can be labelled with exactly the service
        level it was answered at, even if a swap lands mid-batch.
        """
        with self._state_lock:
            return self._navigator, self._status_locked()

    def alive_tree_indexes(self) -> List[int]:
        """Checkpoint tree indexes currently serving (not dead/pending)."""
        with self._state_lock:
            return [
                index for index, tree in enumerate(self._salvaged)
                if tree is not None
            ]

    def _swap(
        self,
        navigator: Optional[MetricNavigator],
        pending: List[int],
        salvaged: Optional[List[Optional[CoverTree]]] = None,
    ) -> None:
        """Atomically install a new service level (bumps generation)."""
        with self._state_lock:
            self._navigator = navigator
            self._pending = pending
            if salvaged is not None:
                self._salvaged = salvaged
            self.generation += 1

    # -- loading ---------------------------------------------------------

    def load(self, path: str, mmap: bool = False) -> "CheckpointService":
        """Bring the service up from a checkpoint, degraded if damaged.

        Unlike :func:`recover_cover`, this does *not* rebuild anything
        yet: corrupted trees are noted as pending, surviving trees
        start serving immediately.  Call :meth:`recover` (e.g. from a
        background worker) to finish.

        With ``mmap=True`` the checkpoint must be a ``navigator`` file
        written with ``packed=True``: the service attaches to the raw
        query arrays by ``np.memmap`` instead of rebuilding — cold
        start in milliseconds, one shared physical copy across every
        worker process on the host.  Mapped service is read-only:
        :meth:`kill_trees`, :meth:`recover` and the ``route`` op are
        unavailable (typed errors), and damage is fail-fast (a CRC
        mismatch raises instead of degrading — there is no per-tree
        salvage for a shared mapping).
        """
        with self._mutate_lock:
            if mmap:
                return self._load_mapped(path)
            return self._load(path)

    def _load_mapped(self, path: str) -> "CheckpointService":
        from .store import load_navigator_checkpoint

        self._path = path
        navigator = load_navigator_checkpoint(
            path, self.metric, contract=self.contract, mmap=True
        )
        self.k = navigator.k
        self._mapped = True
        self._meta = {}
        self.report = None
        self._home = None
        # Placeholder per-tree entries: the python CoverTree objects
        # stay on disk in mapped mode, but tree counts in status() and
        # alive_tree_indexes() must still be honest.
        self._swap(navigator, [], salvaged=[True] * navigator.num_trees)
        return self

    def _load(self, path: str) -> "CheckpointService":
        self._path = path
        if self._journal is not None:
            self._journal.close()
        self._dynamic = None
        self._journal = None
        self.metric = self._base_metric
        try:
            meta, bodies, bad_sections = _salvage_sections(path, self.metric)
        except CheckpointCorruption as exc:
            # Nothing salvageable: no service until recover() rebuilds.
            self._meta = {}
            self.report = None
            self._unusable_reason = str(exc)
            self._swap(None, [-1], salvaged=[])
            return self
        self._meta = meta
        dyn_meta = meta.get("dynamic")
        dyn_meta = dyn_meta if isinstance(dyn_meta, dict) else None
        if dyn_meta is not None:
            # Compacted dynamic checkpoint: its index space may exceed
            # the base metric (appended points, tombstones).  Decode and
            # audit against the full dynamic metric, sampling *active*
            # pairs only — tombstoned leaves dominate trivially but
            # carry no stretch promise.
            self.metric = _dynamic_metric(self._base_metric, dyn_meta)
            live = [int(a) for a in dyn_meta.get("active", [])]
            pairs = [
                (live[a], live[b])
                for a, b in sample_pairs(len(live), 120, seed=0)
            ]
        else:
            pairs = sample_pairs(self.metric.n, 120, seed=0)
        header = bodies.get("cover")
        num_trees = header.get("num_trees") if isinstance(header, dict) else None
        if "cover" in bad_sections or not isinstance(num_trees, int) or num_trees <= 0:
            self._unusable_reason = "cover header section lost"
            self._swap(None, [-1], salvaged=[])
            return self
        self._home = header.get("home") if isinstance(header, dict) else None
        salvaged: List[Optional[CoverTree]] = []
        pending: List[int] = []
        for index in range(num_trees):
            name = tree_section_name(index)
            cover_tree: Optional[CoverTree] = None
            if name in bodies and name not in bad_sections:
                body = bodies[name]
                if isinstance(body, CoverTree):
                    cover_tree = body
                else:
                    try:
                        cover_tree = cover_from_sections(
                            {"cover": {"n": self.metric.n, "num_trees": 1,
                                       "home": None},
                             tree_section_name(0): body},
                            self.metric,
                        ).trees[0]
                    except CheckpointCorruption:
                        cover_tree = None
                if cover_tree is not None and _audit_one_tree(
                    cover_tree, self.metric, pairs
                ) is not None:
                    cover_tree = None
            if cover_tree is None:
                pending.append(index)
            salvaged.append(cover_tree)
        if not pending:
            cover = TreeCover(self.metric, list(salvaged), home=self._home)
            audit_cover(
                cover,
                contract=self.contract if dyn_meta is None else None,
                pairs=pairs,
                workers=self.workers,
            )
            navigator = MetricNavigator(
                self.metric, cover, self.k, workers=self.workers
            )
            self.report = _record_report(RecoveryReport(
                "clean", cover,
                repairs=[TreeRepair(i, "kept") for i in range(num_trees)],
            ))
        else:
            survivors = [t for t in salvaged if t is not None]
            if survivors:
                # Partial cover: home table suspended (it indexes the
                # full tree list), stretch contract not promised.
                partial = TreeCover(self.metric, survivors, home=None)
                navigator = MetricNavigator(
                    self.metric, partial, self.k, workers=self.workers
                )
            else:
                navigator = None
        self._swap(navigator, pending, salvaged=salvaged)
        return self

    # -- queries ---------------------------------------------------------

    def query(self, u: int, v: int) -> DegradedResult:
        """Answer a navigation query at the current service level.

        Full service returns ``degraded=False`` results satisfying the
        k-hop/stretch contract; during recovery, results are labelled
        ``degraded=True`` with the reason, and when nothing was
        salvageable the result is undelivered rather than an exception.
        """
        obs = OBS.enabled
        if obs:
            _C_SVC_QUERIES.inc()
        # One consistent snapshot of the service level: the navigator
        # the answer comes from and the degraded flag must describe the
        # same generation even while kill_trees()/recover() swap state
        # from other threads.  Queries then run lock-free on the
        # snapshot (navigators are immutable once built).
        with self._state_lock:
            navigator = self._navigator
            num_pending = len(self._pending)
            pending = bool(num_pending) or navigator is None
        if navigator is None:
            if obs:
                _C_SVC_UNDELIVERED.inc()
            return DegradedResult(
                u, v, None, delivered=False, degraded=True, over_budget=False,
                reason=(
                    "checkpoint unusable, recovery not yet run: "
                    + getattr(self, "_unusable_reason", "no salvageable trees")
                ),
            )
        path = navigator.find_path(u, v)
        weight = navigator.path_weight(path)
        base = self.metric.distance(u, v)
        stretch = weight / base if base > 0 else 1.0
        if obs and pending:
            _C_SVC_DEGRADED.inc()
        return DegradedResult(
            u, v, path, delivered=True, degraded=pending, over_budget=False,
            hops=len(path) - 1, weight=weight, stretch=stretch,
            reason=(
                f"recovery in progress: serving from "
                f"{navigator.num_trees} surviving trees, "
                f"{num_pending} pending rebuild"
                if pending else ""
            ),
        )

    # -- live degradation ------------------------------------------------

    def kill_trees(self, indexes: Sequence[int]) -> List[int]:
        """Drop live trees from the serving navigator (chaos fault mode).

        Simulates in-memory loss of per-tree state under traffic: the
        named trees stop serving immediately, subsequent queries come
        from the survivors labelled ``degraded=True``, and — because
        the checkpoint on disk is untouched — a later :meth:`recover`
        (typically from a background thread) restores full service.
        Returns the indexes actually killed.
        """
        if self._mapped:
            raise ValueError(
                "kill_trees is unavailable in mapped mode: the query "
                "state is a shared read-only mapping with no per-tree "
                "python objects to drop; load() without mmap for chaos "
                "testing"
            )
        with self._mutate_lock:
            with self._state_lock:
                salvaged = list(self._salvaged)
                pending = set(self._pending)
            killed = [
                index for index in indexes
                if 0 <= index < len(salvaged) and salvaged[index] is not None
            ]
            if not killed:
                return []
            for index in killed:
                salvaged[index] = None
                pending.add(index)
            survivors = [t for t in salvaged if t is not None]
            if survivors:
                partial = TreeCover(self.metric, survivors, home=None)
                navigator = MetricNavigator(
                    self.metric, partial, self.k, workers=self.workers
                )
            else:
                navigator = None
                self._unusable_reason = "every tree killed by chaos"
            self._swap(navigator, sorted(pending), salvaged=salvaged)
            return killed

    # -- dynamic mutation (ROADMAP item 3) -------------------------------

    @property
    def dynamic(self):
        """The :class:`~repro.dynamic.cover.DynamicRobustCover`, if
        :meth:`enable_dynamic` has run; ``None`` otherwise."""
        return self._dynamic

    @property
    def journal(self):
        """The :class:`~repro.dynamic.journal.UpdateJournal`, if any."""
        return self._journal

    def is_known_point(self, point_id: int) -> bool:
        """Is ``point_id`` live (queryable) at the current generation?

        Static service: any id inside the metric.  Dynamic service:
        active ids only — tombstoned points stay in the index space but
        are not valid query endpoints.
        """
        dyn = self._dynamic
        if dyn is not None:
            return dyn.is_active(point_id)
        return 0 <= point_id < self.metric.n

    def _require_mutable(self, op: str) -> None:
        if self._mapped:
            raise ValueError(
                f"{op} is unavailable in mapped mode: the query state is "
                "a shared read-only memory-mapped arena; load() without "
                "mmap and enable_dynamic() to mutate"
            )
        if self._dynamic is None:
            raise ValueError(
                f"{op} requires dynamic mode: call enable_dynamic() "
                "(serve --dynamic) after load()"
            )

    def enable_dynamic(
        self,
        eps: Optional[float] = None,
        journal_path: Optional[str] = None,
        rebuild_threshold: float = 0.35,
    ):
        """Switch the service to mutable (insert/delete/compact) mode.

        Builds a :class:`~repro.dynamic.cover.DynamicRobustCover` for
        the current point set — restored from the checkpoint's
        ``dynamic`` meta block when the file was written by
        :meth:`compact`, fresh otherwise — opens the write-ahead journal
        beside the checkpoint, and replays every journaled mutation past
        the structure's ``applied_seq``.  The replayed structure is
        audited before it serves, so a crash anywhere between journal
        append and patch apply converges to the same audited state on
        restart.

        ``eps`` defaults to the checkpoint's builder metadata; only the
        robust family is mutable (dynamic patching is a Theorem 4.1
        construction).  Idempotent: a second call returns the existing
        dynamic cover.
        """
        if self._mapped:
            raise ValueError(
                "enable_dynamic is unavailable in mapped mode: mapped "
                "service is read-only by design; load() without mmap "
                "to mutate"
            )
        from ..dynamic import DynamicRobustCover, UpdateJournal, journal_path_for

        with self._mutate_lock:
            if self._dynamic is not None:
                return self._dynamic
            with self._state_lock:
                pending = bool(self._pending)
            if pending:
                raise ValueError(
                    "recover() the checkpoint before enable_dynamic(): "
                    "trees are still pending rebuild"
                )
            spec = self._meta.get("builder") or {}
            family = spec.get("family", "robust")
            if family != "robust":
                raise ValueError(
                    "dynamic mutation supports the robust cover family "
                    f"only; this checkpoint was built with {family!r}"
                )
            if spec.get("pruned"):
                # Mirrors the mapped-mode refusal above: a typed error
                # now instead of silent corruption later.  Patch replay
                # indexes the full Theorem 4.1 tree set (one tree per
                # (phase, set) slot); a pruned cover dropped most of
                # those slots, so per-tree patches would land on the
                # wrong trees.
                raise ValueError(
                    "dynamic mutation is unavailable for pruned covers: "
                    "patch replay indexes the full Theorem 4.1 tree set; "
                    "rebuild the checkpoint without --prune to mutate"
                )
            if eps is None:
                eps = float(spec.get("eps", 0.45))
            if journal_path is None:
                if self._path is None:
                    raise ValueError(
                        "enable_dynamic needs journal_path= when no "
                        "checkpoint has been loaded"
                    )
                journal_path = journal_path_for(self._path)
            if getattr(self.metric, "points", None) is None:
                raise ValueError(
                    "dynamic mode requires a coordinate-backed "
                    "(Euclidean) metric"
                )

            dyn_meta = self._meta.get("dynamic")
            if isinstance(dyn_meta, dict):
                dyn = DynamicRobustCover.restore(
                    self._base_metric, dyn_meta, workers=self.workers
                )
                dyn.rebuild_threshold = float(rebuild_threshold)
            else:
                dyn = DynamicRobustCover.from_metric(
                    self.metric,
                    eps=eps,
                    workers=self.workers,
                    rebuild_threshold=rebuild_threshold,
                )
            journal = UpdateJournal(journal_path, base_seq=dyn.applied_seq)
            replay = journal.records_after(dyn.applied_seq)
            with trace(
                "journal.replay", records=len(replay), from_seq=dyn.applied_seq
            ):
                for record in replay:
                    dyn.apply([_op_from_record(record)])
                    dyn.applied_seq = record.seq
            # The replayed structure must audit before it serves: this
            # is the "reload converges to the same audited structure"
            # half of the crash-safety contract.
            audit_cover(
                dyn.cover, contract=None, pairs=dyn.active_pairs(120),
                workers=self.workers,
            )
            self._dynamic = dyn
            self._journal = journal
            self._promote_dynamic(None, None)
            return dyn

    def _promote_dynamic(self, prev_cover, prev_navigator) -> None:
        """Install the dynamic cover's current generation atomically.

        Per-tree navigators are rebuilt only for trees the patch
        replayed or repaired; kept-verbatim trees (shared object
        identity with ``prev_cover``) reuse the previous generation's
        navigators via ``MetricNavigator(_reuse=...)``.
        """
        dyn = self._dynamic
        reuse = None
        if (
            prev_navigator is not None
            and prev_cover is not None
            and getattr(prev_navigator, "cover", None) is prev_cover
        ):
            slots = dyn.navigator_reuse_slots(prev_cover.trees)
            reuse = [
                prev_navigator.navigators[slot] if slot is not None else None
                for slot in slots
            ]
        navigator = MetricNavigator(
            dyn.metric, dyn.cover, self.k, workers=self.workers, _reuse=reuse
        )
        self.metric = dyn.metric
        self._swap(navigator, [], salvaged=list(dyn.trees))

    def insert(self, point: Sequence[float]) -> Dict[str, Any]:
        """Insert a point: journal (fsync) first, then patch, then swap.

        Write-ahead ordering makes the mutation crash-safe: once the
        append is acknowledged it survives any crash (a restart replays
        it from the journal); if the process dies before the append
        returns, the mutation never happened.  In-flight query batches
        keep answering on the pre-mutation snapshot until the swap.
        Returns the new point id, the journal seq, and the patch report.
        """
        self._require_mutable("insert")
        point = [float(x) for x in point]
        with self._mutate_lock:
            dyn = self._dynamic
            # Validate before journaling so the journal only ever holds
            # ops that replay cleanly.
            dyn._validate_batch([("insert", point)])
            record = self._journal.append("insert", point=point)
            prev_cover, prev_navigator = dyn.cover, self._navigator
            report = dyn.apply([("insert", point)])
            dyn.applied_seq = record.seq
            self._promote_dynamic(prev_cover, prev_navigator)
            return {
                "op": "insert",
                "point_id": dyn.n - 1,
                "seq": record.seq,
                "active": len(dyn.active),
                "patch": report.to_dict(),
            }

    def delete(self, point_id: int) -> Dict[str, Any]:
        """Tombstone an active point (write-ahead; see :meth:`insert`)."""
        self._require_mutable("delete")
        point_id = int(point_id)
        with self._mutate_lock:
            dyn = self._dynamic
            dyn._validate_batch([("delete", point_id)])
            record = self._journal.append("delete", point_id=point_id)
            prev_cover, prev_navigator = dyn.cover, self._navigator
            report = dyn.apply([("delete", point_id)])
            dyn.applied_seq = record.seq
            self._promote_dynamic(prev_cover, prev_navigator)
            return {
                "op": "delete",
                "point_id": point_id,
                "seq": record.seq,
                "active": len(dyn.active),
                "patch": report.to_dict(),
            }

    def compact(self) -> Dict[str, Any]:
        """Fold the journal into a fresh checkpoint and truncate it.

        Atomically rewrites the checkpoint with the current generation
        (plus its ``dynamic`` meta block), then resets the journal to
        ``base_seq = applied_seq`` — a restart restores from the
        compacted checkpoint and replays nothing.
        """
        self._require_mutable("compact")
        with self._mutate_lock:
            if self._path is None:
                raise ValueError(
                    "compact needs a checkpoint path: load() one first"
                )
            dyn = self._dynamic
            builder = self._meta.get("builder") or {
                "family": "robust", "eps": dyn.eps,
            }
            save_cover_checkpoint(
                dyn.cover,
                self._path,
                contract=None,
                builder=builder,
                extra_meta={"dynamic": dyn.state_meta()},
            )
            self._meta["builder"] = builder
            self._meta["dynamic"] = dyn.state_meta()
            self._journal.reset(dyn.applied_seq)
            return {
                "op": "compact",
                "path": self._path,
                "applied_seq": dyn.applied_seq,
                "journal_records": len(self._journal),
                "active": len(dyn.active),
            }

    def close(self) -> None:
        """Release the journal file handle (dynamic mode)."""
        if self._journal is not None:
            self._journal.close()

    # -- recovery --------------------------------------------------------

    def recover(self, resave: bool = False) -> RecoveryReport:
        """Finish recovery: rebuild pending trees, audit, promote.

        Delegates to :func:`recover_cover` (per-tree repair first, full
        rebuild as fallback); afterwards :attr:`recovery_pending` is
        False and :meth:`query` answers with the full contract again.
        In dynamic mode the checkpoint on disk may lag the journal, so
        recovery is instead a full masked rebuild of the *current*
        generation — the same deterministic structure a journal replay
        converges to.
        """
        if self._mapped:
            raise ValueError(
                "recover() is unavailable in mapped mode: mapped loads "
                "are fail-fast (CRC-verified at attach) and have no "
                "degraded per-tree state to promote"
            )
        if self._dynamic is not None:
            return self._recover_dynamic(resave)
        if self._path is None:
            raise ValueError("load() a checkpoint before recover()")
        with self._mutate_lock:
            with self._state_lock:
                self._recovering = True
            try:
                # The rebuild runs outside _state_lock: concurrent
                # queries keep answering (degraded) from the previous
                # navigator until the swap below.
                report = recover_cover(
                    self._path,
                    self.metric,
                    builder=self.builder,
                    contract=self.contract,
                    resave=resave,
                    workers=self.workers,
                )
                navigator = MetricNavigator(
                    self.metric, report.cover, self.k, workers=self.workers
                )
                self.report = report
                self._swap(navigator, [], salvaged=list(report.cover.trees))
            finally:
                with self._state_lock:
                    self._recovering = False
        return report

    def _recover_dynamic(self, resave: bool) -> RecoveryReport:
        with self._mutate_lock:
            with self._state_lock:
                self._recovering = True
            try:
                # Queries keep flowing off the previous navigator while
                # the rebuild runs; the swap below promotes atomically.
                dyn = self._dynamic.rebuild()
                audit_cover(
                    dyn.cover, contract=None, pairs=dyn.active_pairs(120),
                    workers=self.workers,
                )
                report = _record_report(RecoveryReport(
                    "full-rebuild", dyn.cover,
                    reason="dynamic mode: full masked rebuild of the "
                           "current generation",
                ))
                self.report = report
                self._dynamic = dyn
                self._promote_dynamic(None, None)
            finally:
                with self._state_lock:
                    self._recovering = False
        if resave and self._path is not None:
            self.compact()
        return report
