"""Structural auditor: verify the paper's invariants on loaded state.

Checkpoint *format* integrity (checksums, shape) is the job of
:mod:`repro.checkpoint.format`; this module answers the semantic
question — does the decoded structure still satisfy what the paper
proves about it?  Following the "verify, then trust" discipline of the
spanner/MST verification literature, every load path runs (a subset
of) these audits before the structure is handed to a caller:

* **trees** — single root, acyclic parent array, non-negative weights,
  and the host/representative fixpoint ``rep_point[vertex_of_point[p]]
  == p`` that makes tree distances dominate metric distances;
* **covers** — domination (``δ_T >= δ_X``) and the declared Table-1
  stretch contract ``(α, ζ)`` spot-checked on sampled pairs;
* **navigators** — hop-budget compliance of ``FindPath(u, v, k)`` on
  sampled queries plus a fingerprint match between the rebuilt
  per-tree 1-spanners and the edge sets recorded at save time;
* **FT spanners** — replica-pool size/consistency per Theorem 4.2 and
  sampled within-budget FT queries;
* **routing labels** — label-only distances (:func:`label_distance`)
  must agree with the tree metric on sampled pairs.

Semantic failures raise :class:`~repro.errors.InvariantViolation`;
audits never repair anything — that is the recovery orchestrator's job.
All sampling is deterministic (seeded), so an audit verdict is
reproducible.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InvariantViolation, check
from ..metrics.base import Metric, sample_pairs
from ..observability import OBS, trace
from ..parallel import map_per_tree
from ..treecover.base import CoverTree, TreeCover

# Passed check batteries (one per AuditReport.record) and failed audits
# (the exception re-raises after counting) — what checkpoint loads and
# recovery sweeps report to dashboards.
_C_AUDIT_PASSED = OBS.registry.counter("audit.checks_passed")
_C_AUDIT_FAILED = OBS.registry.counter("audit.failures")

__all__ = [
    "CoverContract",
    "AuditReport",
    "audit_tree",
    "audit_cover_tree",
    "audit_cover",
    "audit_navigator",
    "audit_ft_spanner",
    "audit_labels",
]


@dataclass
class CoverContract:
    """The declared Table-1 contract a cover is audited against.

    ``gamma`` is the stretch bound α the construction promises
    (measured constants, not the asymptotic worst case — see
    DESIGN.md), ``max_trees`` bounds ζ.  Either may be ``None`` to
    skip that check.  The contract travels inside checkpoint ``meta``
    so an audit years later still knows what was promised at build
    time.
    """

    gamma: Optional[float] = None
    max_trees: Optional[int] = None

    def to_jsonable(self) -> Dict[str, Any]:
        return {"gamma": self.gamma, "max_trees": self.max_trees}

    @classmethod
    def from_jsonable(cls, data: Any) -> Optional["CoverContract"]:
        if not isinstance(data, dict):
            return None
        gamma = data.get("gamma")
        max_trees = data.get("max_trees")
        return cls(
            gamma=float(gamma) if gamma is not None else None,
            max_trees=int(max_trees) if max_trees is not None else None,
        )


@dataclass
class AuditReport:
    """What an audit checked and concluded (it raised if anything failed)."""

    kind: str
    n: int
    num_trees: int
    checks: List[str] = field(default_factory=list)

    def record(self, description: str) -> None:
        if OBS.enabled:
            _C_AUDIT_PASSED.inc()
        self.checks.append(description)

    def format_lines(self) -> str:
        head = f"audit[{self.kind}] n={self.n} trees={self.num_trees}: all passed"
        return "\n".join([head] + [f"  - {c}" for c in self.checks])


def _audited(span_name: str):
    """Wrap an audit entry point in a span that counts failures.

    The audits raise on the first broken invariant; the wrapper counts
    the failure (the span itself records the exception text) and
    re-raises.  Disabled mode short-circuits to the bare function.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            with trace(span_name):
                try:
                    return fn(*args, **kwargs)
                except Exception:
                    _C_AUDIT_FAILED.inc()
                    raise

        return wrapper

    return decorate


def _audit_pairs(
    n: int, pairs: Optional[Sequence[Tuple[int, int]]], sample: int, seed: int
) -> List[Tuple[int, int]]:
    if pairs is not None:
        return list(pairs)
    return sample_pairs(n, sample, seed=seed)


# ----------------------------------------------------------------------
# Trees and covers

def audit_tree(tree) -> None:
    """Well-formedness: one root, acyclic/connected parents, weights >= 0.

    The :class:`Tree` constructor enforces most of this on build; this
    re-checks a tree that has been living in memory (or was assembled
    with ``validate=False``) without rebuilding it.
    """
    roots = [v for v, p in enumerate(tree.parents) if p == -1]
    check(len(roots) == 1, f"tree has {len(roots)} roots, expected exactly 1")
    n = tree.n
    for v, p in enumerate(tree.parents):
        check(
            -1 <= p < n,
            f"parent {p} of vertex {v} out of range for {n} vertices",
        )
    # preorder() raises on cycles; covering all n vertices = connected.
    check(
        len(tree.preorder()) == n,
        "parent array does not describe a connected tree",
    )
    for v, w in enumerate(tree.weights):
        check(w >= 0, f"negative weight {w} on edge into vertex {v}")


def audit_cover_tree(cover_tree: CoverTree, metric: Metric) -> None:
    """One dominating tree: well-formed plus the host/representative
    fixpoint every stretch argument relies on."""
    audit_tree(cover_tree.tree)
    n = metric.n
    check(
        len(cover_tree.vertex_of_point) == n,
        f"vertex_of_point covers {len(cover_tree.vertex_of_point)} of {n} points",
    )
    for p, v in enumerate(cover_tree.vertex_of_point):
        check(
            0 <= v < cover_tree.tree.n,
            f"point {p} hosted at out-of-range vertex {v}",
        )
        check(
            cover_tree.rep_point[v] == p,
            f"host vertex {v} of point {p} represents "
            f"{cover_tree.rep_point[v]} instead (domination would break)",
        )
    for v, p in enumerate(cover_tree.rep_point):
        check(0 <= p < n, f"vertex {v} represents out-of-range point {p}")


def _audit_cover_tree_task(ctx, index: int) -> bool:
    """Per-tree fan-out unit: structure plus domination of one tree.

    Verdicts are deterministic — the audit raises for the lowest-index
    broken tree whatever the worker count, because results (and
    transported exceptions) merge in input order.
    """
    trees, pairs = ctx.payload
    cover_tree = trees[index]
    audit_cover_tree(cover_tree, ctx.metric)
    cover_tree.check_dominating(ctx.metric, pairs)
    return True


@_audited("audit.cover")
def audit_cover(
    cover: TreeCover,
    contract: Optional[CoverContract] = None,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    sample: int = 200,
    seed: int = 0,
    report: Optional[AuditReport] = None,
    workers: Optional[int] = None,
) -> AuditReport:
    """Audit a tree cover: per-tree structure, domination, contract.

    Raises :class:`~repro.errors.InvariantViolation` on the first
    broken invariant; returns the report of what was checked otherwise.
    The per-tree structure/domination checks are independent and fan
    out across ``workers`` processes.
    """
    if report is None:
        report = AuditReport("cover", cover.metric.n, cover.size)
    audit_pairs = _audit_pairs(cover.metric.n, pairs, sample, seed)
    map_per_tree(
        _audit_cover_tree_task,
        range(cover.size),
        workers=workers,
        metric=cover.metric,
        payload=(cover.trees, audit_pairs),
    )
    report.record(f"{cover.size} trees well-formed (roots, cycles, weights, hosts)")
    report.record(f"domination spot-checked on {len(audit_pairs)} pairs")
    if cover.home is not None:
        check(
            len(cover.home) == cover.metric.n
            and all(0 <= t < cover.size for t in cover.home),
            "home table does not map every point to a tree",
        )
        report.record("Ramsey home table consistent")
    if contract is not None:
        if contract.max_trees is not None:
            check(
                cover.size <= contract.max_trees,
                f"cover has {cover.size} trees, contract allows "
                f"ζ <= {contract.max_trees}",
            )
            report.record(f"ζ = {cover.size} <= {contract.max_trees}")
        if contract.gamma is not None:
            worst, _ = cover.measured_stretch(audit_pairs)
            check(
                worst <= contract.gamma + 1e-6,
                f"measured stretch {worst:.4f} exceeds the declared "
                f"contract α = {contract.gamma}",
            )
            report.record(
                f"stretch {worst:.3f} within contract α = {contract.gamma}"
            )
    return report


# ----------------------------------------------------------------------
# Navigators

@_audited("audit.navigator")
def audit_navigator(
    navigator,
    contract: Optional[CoverContract] = None,
    queries: int = 40,
    seed: int = 0,
    fingerprint: Optional[Dict[str, Any]] = None,
    workers: Optional[int] = None,
) -> AuditReport:
    """Audit a :class:`MetricNavigator`: cover + hop-budget compliance.

    Every sampled ``find_path(u, v)`` must return a path of at most
    ``k`` hops made of spanner edges whose weight respects the cover's
    tree distance (the full :meth:`verify_query` contract).  With a
    saved ``fingerprint``, the rebuilt per-tree 1-spanner edge sets
    must match what was recorded at save time.
    """
    report = AuditReport(
        "navigator", navigator.metric.n, navigator.cover.size
    )
    audit_cover(
        navigator.cover, contract=contract, seed=seed, report=report, workers=workers
    )
    if fingerprint is not None:
        navigator.verify_aux_fingerprint(fingerprint)
        report.record("per-tree 1-spanner edge fingerprints match saved state")
    rng = random.Random(seed)
    n = navigator.metric.n
    gamma = contract.gamma if contract is not None else None
    for _ in range(queries):
        u, v = rng.sample(range(n), 2) if n > 1 else (0, 0)
        navigator.verify_query(u, v, gamma=gamma)
    report.record(
        f"{queries} sampled queries within the k={navigator.k} hop budget"
    )
    return report


# ----------------------------------------------------------------------
# FT spanners

@_audited("audit.ft_spanner")
def audit_ft_spanner(
    spanner,
    contract: Optional[CoverContract] = None,
    queries: int = 20,
    seed: int = 0,
    workers: Optional[int] = None,
) -> AuditReport:
    """Audit a :class:`FaultTolerantSpanner` per Theorem 4.2.

    Replica pools must have between 1 and ``f + 1`` distinct in-range
    members with every point present in its own host's pool (the
    undersized-pool fallback relies on it); sampled within-budget
    queries must deliver fault-avoiding <= k-hop paths.
    """
    from ..resilience.validation import validate_ft_spanner

    report = AuditReport("ft_spanner", spanner.metric.n, spanner.cover.size)
    audit_cover(
        spanner.cover, contract=contract, seed=seed, report=report, workers=workers
    )
    validate_ft_spanner(spanner)
    report.record(
        f"replica pools sized/consistent for f={spanner.f} (Theorem 4.2)"
    )
    rng = random.Random(seed)
    n = spanner.metric.n
    for _ in range(queries):
        if n < 2:
            break
        u, v = rng.sample(range(n), 2)
        others = [p for p in range(n) if p != u and p != v]
        rng.shuffle(others)
        faults = set(others[: min(spanner.f, len(others))])
        path = spanner.find_path(u, v, faults)
        spanner.verify_path(u, v, faults, path)
    report.record(
        f"{queries} sampled |F|<=f queries delivered <= k={spanner.k} hops "
        "avoiding faults"
    )
    return report


# ----------------------------------------------------------------------
# Routing labels

@_audited("audit.labels")
def audit_labels(
    cover: TreeCover,
    labels_per_tree: List[List[tuple]],
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    sample: int = 120,
    seed: int = 0,
) -> AuditReport:
    """Audit a routing label table against its cover.

    ``labels_per_tree[t][p]`` is the heavy-path distance label of point
    ``p``'s host vertex in tree ``t``.  Using *only* the labels (the
    information constraint of the labeled routing model), the distance
    :func:`~repro.routing.labels.label_distance` computes must agree
    with the actual tree metric on sampled pairs.
    """
    from ..routing.labels import label_distance

    report = AuditReport("routing_labels", cover.metric.n, cover.size)
    check(
        len(labels_per_tree) == cover.size,
        f"{len(labels_per_tree)} label tables for {cover.size} trees",
    )
    for t, table in enumerate(labels_per_tree):
        check(
            len(table) == cover.metric.n,
            f"tree {t} label table covers {len(table)} of "
            f"{cover.metric.n} points",
        )
    audit_pairs = _audit_pairs(cover.metric.n, pairs, sample, seed)
    for t, (cover_tree, table) in enumerate(zip(cover.trees, labels_per_tree)):
        for p, q in audit_pairs:
            from_labels = label_distance(table[p], table[q])
            actual = cover_tree.tree_distance(p, q)
            check(
                abs(from_labels - actual) <= 1e-6 * max(1.0, actual),
                f"tree {t}: label distance {from_labels} for ({p}, {q}) "
                f"disagrees with tree distance {actual}",
            )
    report.record(
        f"label-only distances agree with {cover.size} tree metrics on "
        f"{len(audit_pairs)} pairs"
    )
    return report
