"""Live-traffic chaos: kill serving trees, recover in the background.

PR 1's injectors and PR 3's :class:`CheckpointService` exercised faults
*offline*; this controller is the live-traffic version the daemon
exposes as a request type (``op: "chaos"``).  A kill drops trees from
the serving navigator mid-traffic — in-flight and subsequent queries
immediately come back ``degraded``-labelled from the survivors — and,
unless asked not to, a daemon-side background thread runs
:meth:`CheckpointService.recover` until the audit passes and full
contract service resumes.  The checkpoint on disk is never touched, so
recovery always converges for an intact file.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Optional, Sequence

from ..checkpoint.recovery import CheckpointService
from ..observability import OBS

__all__ = ["ChaosController"]

_C_KILLS = OBS.registry.counter("serve.chaos.trees_killed")
_C_RECOVERIES = OBS.registry.counter("serve.chaos.recoveries")
_C_RECOVERY_FAILURES = OBS.registry.counter("serve.chaos.recovery_failures")


class ChaosController:
    """Inject tree deaths into a live service and drive recovery."""

    def __init__(self, service: CheckpointService):
        self.service = service
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._last_error: Optional[str] = None

    @property
    def recovery_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def last_error(self) -> Optional[str]:
        return self._last_error

    def inject(
        self,
        kill: Optional[Sequence[int]] = None,
        kill_random: int = 0,
        seed: int = 0,
        recover: bool = True,
    ) -> Dict[str, Any]:
        """Kill trees and (optionally) start background recovery.

        ``kill`` names checkpoint tree indexes outright; ``kill_random``
        samples that many currently-alive trees with a seeded RNG
        (deterministic for tests and scripted scenarios).  With
        ``recover=True`` a recovery thread starts unless one is already
        running; ``kill=[]``/``kill_random=0`` with ``recover=True``
        just (re)starts recovery for an already-degraded service.
        """
        indexes: List[int] = list(kill or [])
        if kill_random > 0:
            alive = self.service.alive_tree_indexes()
            rng = random.Random(seed)
            chosen = rng.sample(alive, min(kill_random, len(alive)))
            indexes.extend(chosen)
        killed = self.service.kill_trees(indexes) if indexes else []
        if killed and OBS.enabled:
            _C_KILLS.inc(len(killed))
        recovering = False
        if recover and (killed or self.service.recovery_pending):
            recovering = self.start_recovery()
        return {
            "killed": killed,
            "recovering": recovering or self.recovery_running,
            "service": self.service.status(),
        }

    def start_recovery(self) -> bool:
        """Start the background recovery thread; False if one is live."""
        with self._lock:
            if self.recovery_running:
                return False
            self._last_error = None
            self._thread = threading.Thread(
                target=self._recover, name="repro-serve-recovery", daemon=True
            )
            self._thread.start()
            return True

    def _recover(self) -> None:
        try:
            self.service.recover()
            if OBS.enabled:
                _C_RECOVERIES.inc()
        except Exception as exc:  # surfaced via health, not a crash
            self._last_error = f"{type(exc).__name__}: {exc}"
            if OBS.enabled:
                _C_RECOVERY_FAILURES.inc()

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
