"""A small synchronous client for the serving daemon.

Used by the tests, the serving benchmark and ``scripts/serve_smoke.sh``
to drive traffic; embedding applications can use it too.  It speaks the
line protocol over a plain TCP socket and matches responses to requests
by ``id``, so pipelined bursts (the point of the admission batcher)
work naturally: :meth:`ServeClient.send` writes many requests at once,
:meth:`ServeClient.collect` gathers their responses in request order
regardless of the order the server finished them in.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .protocol import encode_line

__all__ = ["ServeClient", "wait_for_server"]


class ServeClient:
    """Blocking NDJSON client; safe for single-threaded use."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._inbox: Dict[Any, Dict[str, Any]] = {}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- raw request plumbing --------------------------------------------

    def send(self, requests: Sequence[Dict[str, Any]]) -> List[Any]:
        """Write many requests in one burst; returns their ids."""
        ids: List[Any] = []
        chunks: List[bytes] = []
        for request in requests:
            payload = dict(request)
            if "id" not in payload:
                self._next_id += 1
                payload["id"] = self._next_id
            ids.append(payload["id"])
            chunks.append(encode_line(payload))
        self._sock.sendall(b"".join(chunks))
        return ids

    def collect(self, ids: Sequence[Any]) -> List[Dict[str, Any]]:
        """Responses for ``ids`` in that order (reads until all arrive)."""
        wanted = set(ids)
        while wanted - self._inbox.keys():
            line = self._reader.readline()
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-collection"
                )
            response = json.loads(line)
            self._inbox[response.get("id")] = response
        return [self._inbox.pop(request_id) for request_id in ids]

    def recv(self) -> Dict[str, Any]:
        """The next response off the wire, regardless of id.

        For closed-loop drivers (the serving benchmark) that keep a
        window of requests in flight and react to completions in the
        order the server finishes them.  Drains the inbox first so it
        composes with :meth:`collect`.
        """
        if self._inbox:
            request_id = next(iter(self._inbox))
            return self._inbox.pop(request_id)
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request, one response."""
        payload = {"op": op, **fields}
        return self.collect(self.send([payload]))[0]

    # -- query convenience -----------------------------------------------

    def distance(
        self, u: int, v: int, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        return self._query("distance", u, v, deadline_ms)

    def path(
        self, u: int, v: int, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        return self._query("path", u, v, deadline_ms)

    def route(
        self, u: int, v: int, deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        return self._query("route", u, v, deadline_ms)

    def _query(
        self, op: str, u: int, v: int, deadline_ms: Optional[float]
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"u": u, "v": v}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.request(op, **fields)

    def query_batch(
        self,
        op: str,
        pairs: Sequence[Tuple[int, int]],
        deadline_ms: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Pipeline one op over many pairs; responses in pair order."""
        requests = []
        for u, v in pairs:
            fields: Dict[str, Any] = {"op": op, "u": u, "v": v}
            if deadline_ms is not None:
                fields["deadline_ms"] = deadline_ms
            requests.append(fields)
        return self.collect(self.send(requests))

    # -- mutation convenience --------------------------------------------

    def insert(self, point: Sequence[float]) -> Dict[str, Any]:
        """Insert a point (dynamic mode); returns the full envelope."""
        return self.request("insert", point=[float(x) for x in point])

    def delete(self, point_id: int) -> Dict[str, Any]:
        """Tombstone an active point (dynamic mode)."""
        return self.request("delete", point_id=int(point_id))

    def compact(self) -> Dict[str, Any]:
        """Fold the update journal into the checkpoint."""
        return self.request("compact")

    # -- admin convenience -----------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def health(self) -> Dict[str, Any]:
        return self.request("health")["result"]

    def metrics_text(self) -> str:
        return self.request("metrics")["result"]["text"]

    def chaos(
        self,
        kill: Optional[Sequence[int]] = None,
        kill_random: int = 0,
        seed: int = 0,
        recover: bool = True,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"recover": recover}
        if kill is not None:
            fields["kill"] = list(kill)
        if kill_random:
            fields["kill_random"] = kill_random
            fields["seed"] = seed
        return self.request("chaos", **fields)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # -- polling helpers -------------------------------------------------

    def wait_state(
        self, state: str, timeout: float = 60.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``health`` until the service reaches ``state``."""
        deadline = time.monotonic() + timeout
        while True:
            health = self.health()
            if health["service"]["state"] == state:
                return health
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"service did not reach state {state!r} within "
                    f"{timeout}s (currently {health['service']['state']!r})"
                )
            time.sleep(interval)


def wait_for_server(
    host: str, port: int, timeout: float = 30.0, interval: float = 0.1
) -> None:
    """Block until a daemon accepts connections and answers a ping."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=timeout) as client:
                client.ping()
                return
        except (OSError, ConnectionError, json.JSONDecodeError) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(
        f"no daemon answering on {host}:{port} after {timeout}s "
        f"(last error: {last_error})"
    )
