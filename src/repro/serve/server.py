"""The asyncio daemon front: NDJSON queries plus an HTTP side door.

:class:`SpannerServer` ties the pieces together: connections speak the
line protocol (:mod:`repro.serve.protocol`), query ops flow through the
:class:`~repro.serve.batcher.MicroBatcher` into the
:class:`~repro.serve.engine.QueryEngine`, admin ops answer inline, and
the :class:`~repro.serve.chaos.ChaosController` provides the
live-traffic failure mode.  Every response envelope carries the
service block (ready/degraded/recovering + generation), so clients see
degradation and recovery happen request by request.

For scraping convenience the same port also answers plain HTTP GETs —
``/healthz`` (liveness), ``/readyz`` (200 only at full contract, 503
while degraded/recovering/down) and ``/metrics`` (the observability
registry in Prometheus text format) — detected by peeking at the first
line of a connection, so `curl` and a Prometheus scraper work without
a second listener.

:class:`ThreadedServer` runs the whole daemon on a background thread
with its own event loop — the harness tests, the serving benchmark and
embedding applications use it; the CLI runs :meth:`SpannerServer.run`
in the foreground instead.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from ..checkpoint.recovery import CheckpointService
from ..observability import OBS
from .batcher import MicroBatcher
from .chaos import ChaosController
from .engine import QueryEngine
from .policy import AdmissionPolicy
from .protocol import (
    MUTATION_OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    ProtocolError,
    Request,
    encode_line,
    make_response,
    parse_request,
)

__all__ = ["SpannerServer", "ThreadedServer"]

_C_CONNECTIONS = OBS.registry.counter("serve.connections")
_C_REQUESTS = OBS.registry.counter("serve.requests")
_C_BAD_REQUESTS = OBS.registry.counter("serve.bad_requests")


class SpannerServer:
    """Long-lived query daemon over a loaded :class:`CheckpointService`."""

    def __init__(
        self,
        service: CheckpointService,
        policy: Optional[AdmissionPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        router_seed: int = 0,
    ):
        self.service = service
        self.policy = policy or AdmissionPolicy()
        self.requested_host = host
        self.requested_port = port
        self.engine = QueryEngine(service, router_seed=router_seed)
        self.batcher = MicroBatcher(self.engine.execute, self.policy)
        self.chaos = ChaosController(service)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._started_at = time.monotonic()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._stop_event = asyncio.Event()
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.requested_host, self.requested_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or the shutdown op) fires."""
        await self._stop_event.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.batcher.stop()
        # A chaos recovery still running keeps its thread; it is a
        # daemon thread and the service stays consistent without us.

    def run(self, ready=None) -> int:
        """Foreground entry point (the CLI): serve until stopped.

        ``ready`` is called as ``ready(host, port)`` once the socket is
        bound.  Returns 0 on clean shutdown (shutdown op or Ctrl-C).
        """

        async def _main() -> None:
            host, port = await self.start()
            if ready is not None:
                ready(host, port)
            await self.serve_until_stopped()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
        return 0

    # -- status ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status = self.service.status()
        status["degraded"] = status["state"] != "ready"
        return {
            "protocol": PROTOCOL_VERSION,
            "ready": status["state"] == "ready",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue_depth": self.batcher.queue_depth,
            "policy": {
                "max_batch": self.policy.max_batch,
                "max_queue": self.policy.max_queue,
                "flush_interval_ms": self.policy.flush_interval * 1000.0,
                "default_deadline_ms": self.policy.default_deadline * 1000.0,
                "max_retries": self.policy.max_retries,
            },
            "recovery_running": self.chaos.recovery_running,
            "recovery_error": self.chaos.last_error,
            "service": status,
        }

    def _service_block(self) -> Dict[str, Any]:
        status = self.service.status()
        status["degraded"] = status["state"] != "ready"
        return status

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if OBS.enabled:
            _C_CONNECTIONS.inc()
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            first = await reader.readline()
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._handle_http(first, reader, writer)
                return
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    task = asyncio.ensure_future(
                        self._handle_line(stripped, writer, write_lock)
                    )
                    tasks.add(task)
                    self._conn_tasks.add(task)
                    task.add_done_callback(tasks.discard)
                    task.add_done_callback(self._conn_tasks.discard)
                line = await reader.readline()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if OBS.enabled:
            _C_REQUESTS.inc()
        try:
            request = parse_request(line.decode("utf-8", errors="replace"))
        except ProtocolError as exc:
            if OBS.enabled:
                _C_BAD_REQUESTS.inc()
            response = make_response(
                exc.request_id, "error", error=str(exc),
                service=self._service_block(),
            )
            await self._write(writer, write_lock, response)
            return
        if request.op in QUERY_OPS:
            response = await self._handle_query(request)
        elif request.op in MUTATION_OPS:
            # Mutations run on the default executor: the patch is heavy
            # CPU work serialized by the service's mutate lock, and the
            # event loop must keep pumping in-flight query batches (which
            # answer on the pre-mutation snapshot) meanwhile.
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                None, self._handle_mutation, request
            )
        else:
            response = self._handle_admin(request)
        await self._write(writer, write_lock, response)
        if request.op == "shutdown":
            self.request_stop()

    async def _handle_query(self, request: Request) -> Dict[str, Any]:
        n = self.service.metric.n
        error = None
        if not (0 <= request.u < n and 0 <= request.v < n):
            error = (
                f"point ids must lie in [0, {n}), "
                f"got ({request.u}, {request.v})"
            )
        elif not (
            self.service.is_known_point(request.u)
            and self.service.is_known_point(request.v)
        ):
            error = (
                f"pair ({request.u}, {request.v}) references a deleted "
                "(tombstoned) point; only live points are queryable"
            )
        if error is not None:
            if OBS.enabled:
                _C_BAD_REQUESTS.inc()
            return make_response(
                request.id, "error", error=error,
                service=self._service_block(),
            )
        loop = asyncio.get_running_loop()
        deadline = self.policy.deadline_at(loop.time(), request.deadline_ms)
        payload = await self.batcher.submit(
            request.op, request.u, request.v, deadline
        )
        return make_response(
            request.id,
            payload.get("status", "error"),
            result=payload.get("result"),
            error=payload.get("error"),
            # Batches stamp the snapshot that answered them; admission
            # failures (shed/timeout) fall back to the current level.
            service=payload.get("service") or self._service_block(),
        )

    def _handle_admin(self, request: Request) -> Dict[str, Any]:
        if request.op == "ping":
            return make_response(
                request.id, "ok", result={"pong": True},
                service=self._service_block(),
            )
        if request.op == "health":
            return make_response(
                request.id, "ok", result=self.health(),
                service=self._service_block(),
            )
        if request.op == "metrics":
            return make_response(
                request.id, "ok",
                result={
                    "content_type": "text/plain; version=0.0.4",
                    "text": OBS.registry.export_prom_text(),
                },
                service=self._service_block(),
            )
        if request.op == "chaos":
            extra = request.extra
            kill = extra.get("kill")
            if kill is not None and not (
                isinstance(kill, list)
                and all(isinstance(i, int) and not isinstance(i, bool)
                        for i in kill)
            ):
                return make_response(
                    request.id, "error",
                    error=f"chaos field 'kill' must be a list of tree "
                          f"indexes, got {kill!r}",
                    service=self._service_block(),
                )
            kill_random = extra.get("kill_random", 0)
            if isinstance(kill_random, bool) or not isinstance(kill_random, int):
                return make_response(
                    request.id, "error",
                    error=f"chaos field 'kill_random' must be an int, "
                          f"got {kill_random!r}",
                    service=self._service_block(),
                )
            outcome = self.chaos.inject(
                kill=kill,
                kill_random=kill_random,
                seed=int(extra.get("seed", 0)),
                recover=bool(extra.get("recover", True)),
            )
            return make_response(
                request.id, "ok", result=outcome,
                service=self._service_block(),
            )
        # shutdown — acknowledged here, enacted by the caller.
        return make_response(
            request.id, "ok", result={"stopping": True},
            service=self._service_block(),
        )

    def _handle_mutation(self, request: Request) -> Dict[str, Any]:
        """insert / delete / compact, serialized by the service.

        Runs on an executor thread.  The service journals (fsync) before
        patching and swaps the generation atomically; query batches in
        flight keep answering on the pre-mutation snapshot.  Refusals
        are typed: mapped (read-only) service answers ``undelivered``
        with a "memory-mapped" explanation, invalid mutations (duplicate
        insert, deleting a dead id, mutation without dynamic mode)
        answer ``error``.
        """
        try:
            if request.op == "insert":
                result = self.service.insert(request.extra["point"])
            elif request.op == "delete":
                result = self.service.delete(request.extra["point_id"])
            else:
                result = self.service.compact()
        except ValueError as exc:
            if OBS.enabled:
                _C_BAD_REQUESTS.inc()
            refused = "unavailable in mapped mode" in str(exc)
            return make_response(
                request.id,
                "undelivered" if refused else "error",
                error=str(exc),
                service=self._service_block(),
            )
        return make_response(
            request.id, "ok", result=result, service=self._service_block(),
        )

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        try:
            async with write_lock:
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; nothing to deliver to

    # -- HTTP facade -----------------------------------------------------

    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # Drain the request headers (bounded) so the peer can write.
        for _ in range(64):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        try:
            target = first_line.split()[1].decode("ascii", errors="replace")
        except IndexError:
            target = "/"
        path = target.split("?", 1)[0]
        if path == "/metrics":
            status, content_type = "200 OK", "text/plain; version=0.0.4"
            body = OBS.registry.export_prom_text()
        elif path == "/healthz":
            status, content_type = "200 OK", "application/json"
            body = json.dumps(self.health()) + "\n"
        elif path == "/readyz":
            health = self.health()
            status = "200 OK" if health["ready"] else "503 Service Unavailable"
            content_type = "application/json"
            body = json.dumps(health) + "\n"
        else:
            status, content_type = "404 Not Found", "text/plain"
            body = "unknown path; try /healthz /readyz /metrics\n"
        payload = body.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + payload
        )
        await writer.drain()


class ThreadedServer:
    """Run a :class:`SpannerServer` on a dedicated background thread.

    Context-manager style::

        with ThreadedServer(service) as ts:
            client = ServeClient(ts.host, ts.port)
            ...

    The event loop lives entirely on the thread; ``stop()`` (or context
    exit) requests a clean shutdown and joins it.
    """

    def __init__(self, service: CheckpointService, **server_kwargs: Any):
        self.server = SpannerServer(service, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 30.0) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("serve thread did not come up in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        async def _main() -> None:
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(_main())
        except Exception:
            if not self._ready.is_set():  # startup failure already kept
                self._ready.set()

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and self._thread is not None:
            try:
                loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
