"""Line-delimited JSON wire protocol for the query-serving daemon.

One request per line, one response per line, UTF-8 JSON.  Responses to
a connection may arrive **out of request order** (the admission
controller batches and different batches finish at different times);
clients match responses to requests by the ``id`` field, which the
server echoes verbatim.

Request shape::

    {"id": 7, "op": "path", "u": 3, "v": 41, "deadline_ms": 50}

``op`` is one of the query ops (``distance`` | ``path`` | ``route``,
admitted through the micro-batcher), an admin op (``ping`` |
``health`` | ``metrics`` | ``chaos`` | ``shutdown``, answered inline)
or a mutation op (``insert`` | ``delete`` | ``compact``, serialized
through the service's mutate lock; in-flight query batches answer on
the pre-mutation snapshot).  ``insert`` carries ``point`` (a coordinate
list), ``delete`` carries ``point_id``.  ``deadline_ms`` is optional
and relative to arrival; omitted means the server's default deadline.

Response envelope::

    {"id": 7, "ok": true, "status": "ok", "result": {...},
     "error": null, "service": {"state": "ready", "generation": 1, ...}}

``status`` is the per-request service level:

=============  ========================================================
``ok``         delivered with the full paper contract
``degraded``   delivered from surviving trees only (no contract); the
               ``service`` block says why
``undelivered`` nothing salvageable could answer (still not an error:
               the envelope labels the outage explicitly)
``overloaded`` shed at admission — the bounded queue was full
``timeout``    the request's deadline expired before an answer
``error``      malformed request or an exhausted-retries failure
=============  ========================================================

``ok`` is true exactly for ``ok``/``degraded`` (an answer was
delivered); every response carries the ``service`` block so clients
can observe degradation and recovery on live traffic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "ADMIN_OPS",
    "MUTATION_OPS",
    "DELIVERED_STATUSES",
    "ProtocolError",
    "Request",
    "parse_request",
    "make_response",
    "encode_line",
]

PROTOCOL_VERSION = "repro.serve/v1"

QUERY_OPS = frozenset({"distance", "path", "route"})
ADMIN_OPS = frozenset({"ping", "health", "metrics", "chaos", "shutdown"})
MUTATION_OPS = frozenset({"insert", "delete", "compact"})
DELIVERED_STATUSES = frozenset({"ok", "degraded"})


class ProtocolError(ValueError):
    """A request line that cannot be admitted; carries the echoed id."""

    def __init__(self, message: str, request_id: Any = None):
        super().__init__(message)
        self.request_id = request_id


@dataclass
class Request:
    """A decoded, validated request."""

    id: Any
    op: str
    u: int = -1
    v: int = -1
    deadline_ms: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def _require_point(payload: Dict[str, Any], name: str, request_id: Any) -> int:
    value = payload.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"field {name!r} must be an integer point id, got {value!r}",
            request_id,
        )
    if value < 0:
        raise ProtocolError(
            f"field {name!r} must be >= 0, got {value}", request_id
        )
    return value


def parse_request(line: str) -> Request:
    """Decode one request line; raises :class:`ProtocolError` on bad input."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = payload.get("id")
    op = payload.get("op")
    if not isinstance(op, str) or op not in (
        QUERY_OPS | ADMIN_OPS | MUTATION_OPS
    ):
        raise ProtocolError(
            f"unknown op {op!r} (query ops: {sorted(QUERY_OPS)}, "
            f"admin ops: {sorted(ADMIN_OPS)}, "
            f"mutation ops: {sorted(MUTATION_OPS)})",
            request_id,
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError(
                f"deadline_ms must be a number, got {deadline_ms!r}", request_id
            )
        if deadline_ms <= 0:
            raise ProtocolError(
                f"deadline_ms must be > 0, got {deadline_ms}", request_id
            )
        deadline_ms = float(deadline_ms)
    request = Request(id=request_id, op=op, deadline_ms=deadline_ms)
    if op in QUERY_OPS:
        request.u = _require_point(payload, "u", request_id)
        request.v = _require_point(payload, "v", request_id)
    elif op == "insert":
        point = payload.get("point")
        if not (
            isinstance(point, list)
            and point
            and all(
                isinstance(x, (int, float)) and not isinstance(x, bool)
                for x in point
            )
        ):
            raise ProtocolError(
                "insert requires 'point': a non-empty list of "
                f"coordinates, got {point!r}",
                request_id,
            )
    elif op == "delete":
        _require_point(payload, "point_id", request_id)
    request.extra = {
        key: value
        for key, value in payload.items()
        if key not in ("id", "op", "u", "v", "deadline_ms")
    }
    return request


def make_response(
    request_id: Any,
    status: str,
    result: Optional[Dict[str, Any]] = None,
    error: Optional[str] = None,
    service: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a response envelope (see the module docstring)."""
    return {
        "id": request_id,
        "ok": status in DELIVERED_STATUSES,
        "status": status,
        "result": result,
        "error": error,
        "service": service,
    }


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
