"""The admission controller: bounded queue, micro-batches, deadlines.

BENCH_navigation shows the batched query kernels run ~24x faster than
scalar queries; the :class:`MicroBatcher` is what converts concurrent
single-pair requests into those batches without giving up tail-latency
control.  It is a pure asyncio component with an injectable ``execute``
callable, so every admission behavior — flush-on-size vs
flush-on-timer, shedding, deadline expiry, retry-with-backoff — unit
tests deterministically against a fake executor, independent of the
navigation stack.

Lifecycle: requests enter through :meth:`MicroBatcher.submit` (which
returns each request's resolved payload), a single flusher task drains
the queue into per-op batches, and batches execute on the event loop's
default thread pool so the CPU-bound navigation kernels never block
admission of new work.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Awaitable, Callable, Deque, Dict, List, Optional, Tuple

from ..observability import OBS
from .policy import AdmissionPolicy

__all__ = ["MicroBatcher"]

# Executor contract: (op, [(u, v), ...]) -> one payload dict per pair,
# in input order.  Payloads carry at least {"status", "result"}.
BatchExecutor = Callable[[str, List[Tuple[int, int]]], List[Dict[str, Any]]]

_G_QUEUE_DEPTH = OBS.registry.gauge("serve.queue_depth")
_H_BATCH_SIZE = OBS.registry.histogram("serve.batch_size")
_H_BATCH_US = OBS.registry.histogram("serve.batch_latency_us")
_H_REQUEST_US = OBS.registry.histogram("serve.request_latency_us")
_C_ADMITTED = OBS.registry.counter("serve.admitted")
_C_SHED = OBS.registry.counter("serve.shed")
_C_TIMEOUTS = OBS.registry.counter("serve.timeouts")
_C_RETRIES = OBS.registry.counter("serve.retries")
_C_FAILURES = OBS.registry.counter("serve.batch_failures")


class _Pending:
    """One admitted request waiting for (or riding in) a batch."""

    __slots__ = ("op", "u", "v", "deadline", "future", "admitted_at")

    def __init__(self, op: str, u: int, v: int, deadline: float,
                 future: "asyncio.Future", admitted_at: float):
        self.op = op
        self.u = u
        self.v = v
        self.deadline = deadline
        self.future = future
        self.admitted_at = admitted_at


class MicroBatcher:
    """Coalesce concurrent requests into bounded micro-batches.

    Parameters
    ----------
    execute:
        ``(op, pairs) -> payloads`` — synchronous, called on a worker
        thread.  Exceptions are treated as transient and retried per
        the policy before the batch's requests fail with ``error``.
    policy:
        The :class:`~repro.serve.policy.AdmissionPolicy` in force.
    """

    def __init__(self, execute: BatchExecutor, policy: AdmissionPolicy):
        self._execute = execute
        self.policy = policy
        self._queue: Deque[_Pending] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._have_work: Optional[asyncio.Event] = None
        self._batch_full: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._have_work = asyncio.Event()
        self._batch_full = asyncio.Event()
        self._running = True
        self._task = asyncio.ensure_future(self._flush_loop())

    async def stop(self) -> None:
        """Stop flushing; unresolved requests fail fast with ``error``."""
        self._running = False
        if self._have_work is not None:
            self._have_work.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while self._queue:
            item = self._queue.popleft()
            self._resolve(item, {
                "status": "error", "result": None,
                "error": "server shutting down",
            })
        if OBS.enabled:
            _G_QUEUE_DEPTH.set(0)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- admission -------------------------------------------------------

    async def submit(
        self, op: str, u: int, v: int, deadline: float
    ) -> Dict[str, Any]:
        """Admit one request; returns its resolved payload.

        Returns immediately with ``overloaded`` when the queue is full,
        and with ``timeout`` once ``deadline`` (absolute, event-loop
        clock) passes — whichever state the request is in.
        """
        obs = OBS.enabled
        if len(self._queue) >= self.policy.max_queue:
            if obs:
                _C_SHED.inc()
            return {
                "status": "overloaded", "result": None,
                "error": (
                    f"admission queue full "
                    f"({self.policy.max_queue} requests waiting)"
                ),
            }
        now = self._loop.time()
        remaining = deadline - now
        if remaining <= 0:
            if obs:
                _C_TIMEOUTS.inc()
            return {
                "status": "timeout", "result": None,
                "error": "deadline expired before admission",
            }
        item = _Pending(op, u, v, deadline, self._loop.create_future(), now)
        self._queue.append(item)
        if obs:
            _C_ADMITTED.inc()
            _G_QUEUE_DEPTH.set(len(self._queue))
        self._have_work.set()
        if len(self._queue) >= self.policy.max_batch:
            self._batch_full.set()
        try:
            payload = await asyncio.wait_for(item.future, timeout=remaining)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; the flusher skips it.
            if obs:
                _C_TIMEOUTS.inc()
            return {
                "status": "timeout", "result": None,
                "error": (
                    f"deadline of {remaining * 1000:.1f}ms expired "
                    "before the batch completed"
                ),
            }
        if obs:
            _H_REQUEST_US.observe((self._loop.time() - now) * 1e6)
        return payload

    # -- flushing --------------------------------------------------------

    async def _flush_loop(self) -> None:
        while self._running:
            await self._have_work.wait()
            if not self._running:
                break
            # Batch window: flush immediately when full, else give the
            # queue flush_interval seconds to fill up.
            if (
                len(self._queue) < self.policy.max_batch
                and self.policy.flush_interval > 0
            ):
                try:
                    await asyncio.wait_for(
                        self._batch_full.wait(),
                        timeout=self.policy.flush_interval,
                    )
                except asyncio.TimeoutError:
                    pass
            batch: List[_Pending] = []
            while self._queue and len(batch) < self.policy.max_batch:
                batch.append(self._queue.popleft())
            self._batch_full.clear()
            if not self._queue:
                self._have_work.clear()
            if OBS.enabled:
                _G_QUEUE_DEPTH.set(len(self._queue))
            live = self._drop_dead(batch)
            if not live:
                continue
            await self._run_batch(live)

    def _drop_dead(self, batch: List[_Pending]) -> List[_Pending]:
        """Shed abandoned/expired requests instead of computing them."""
        now = self._loop.time()
        live: List[_Pending] = []
        for item in batch:
            if item.future.done():  # submitter already timed out
                continue
            if item.deadline <= now:
                self._resolve(item, {
                    "status": "timeout", "result": None,
                    "error": "deadline expired in the admission queue",
                })
                continue
            live.append(item)
        return live

    async def _run_batch(self, batch: List[_Pending]) -> None:
        by_op: Dict[str, List[_Pending]] = {}
        for item in batch:
            by_op.setdefault(item.op, []).append(item)
        for op, items in by_op.items():
            pairs = [(item.u, item.v) for item in items]
            payloads = await self._execute_with_retry(op, pairs)
            if payloads is None or len(payloads) != len(items):
                message = (
                    "batch execution failed after "
                    f"{self.policy.max_retries + 1} attempts"
                    if payloads is None
                    else f"executor returned {len(payloads)} payloads "
                         f"for {len(items)} requests"
                )
                for item in items:
                    self._resolve(item, {
                        "status": "error", "result": None, "error": message,
                    })
                continue
            for item, payload in zip(items, payloads):
                self._resolve(item, payload)

    async def _execute_with_retry(
        self, op: str, pairs: List[Tuple[int, int]]
    ) -> Optional[List[Dict[str, Any]]]:
        obs = OBS.enabled
        for attempt in range(self.policy.max_retries + 1):
            start = time.perf_counter()
            try:
                payloads = await self._loop.run_in_executor(
                    None, self._execute, op, pairs
                )
            except Exception:
                if obs:
                    _C_RETRIES.inc()
                if attempt >= self.policy.max_retries:
                    if obs:
                        _C_FAILURES.inc()
                    return None
                await asyncio.sleep(self.policy.backoff_delay(attempt))
                continue
            if obs:
                _H_BATCH_SIZE.observe(len(pairs))
                _H_BATCH_US.observe((time.perf_counter() - start) * 1e6)
            return payloads
        return None

    @staticmethod
    def _resolve(item: _Pending, payload: Dict[str, Any]) -> None:
        if not item.future.done():
            item.future.set_result(payload)
