"""Batch query execution against a live :class:`CheckpointService`.

The engine is the synchronous half of the daemon: the batcher hands it
``(op, pairs)`` micro-batches on a worker thread and it answers them
through the vectorized kernels — ``approx_distances`` for ``distance``,
``find_paths`` for ``path``, and the Theorem 5.1 compact-routing scheme
for ``route`` (per the local-routing model of arXiv:2012.00959, route
answers come from per-tree labels/tables, not global state).

Every batch runs against **one**
:meth:`~repro.checkpoint.recovery.CheckpointService.snapshot`, so all
its payloads are labelled with exactly the service level that answered
them: while the chaos controller has trees dead and recovery is still
running, payloads come back ``status="degraded"`` with the surviving
tree count in the ``service`` block — never an unlabelled wrong answer.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

from ..checkpoint.recovery import CheckpointService
from ..observability import OBS
from ..routing.metric_routing import MetricRoutingScheme

__all__ = ["QueryEngine"]

_C_DEGRADED = OBS.registry.counter("serve.degraded_responses")
_C_UNDELIVERED = OBS.registry.counter("serve.undelivered_responses")


class QueryEngine:
    """Execute query micro-batches at the current service level."""

    #: Routing schemes cached beyond this many generations are evicted
    #: (oldest first); in-flight batches on a just-superseded snapshot
    #: still find their generation's scheme here.
    ROUTER_CACHE = 4

    def __init__(self, service: CheckpointService, router_seed: int = 0):
        self.service = service
        self.router_seed = router_seed
        # Routing schemes derive from one generation's cover *and*
        # metric, so they are cached per generation and invalidated
        # atomically with generation swaps (chaos kill / recovery /
        # dynamic mutation).  A single mutable slot would be a
        # staleness bug: a batch answering on the pre-mutation snapshot
        # must never route through the post-mutation scheme (or vice
        # versa).  The lock covers concurrent batches on the executor's
        # thread pool.
        self._router_lock = threading.Lock()
        self._routers: Dict[int, MetricRoutingScheme] = {}

    # -- public entry (the batcher's executor) ---------------------------

    def execute(
        self, op: str, pairs: List[Tuple[int, int]]
    ) -> List[Dict[str, Any]]:
        navigator, status = self.service.snapshot()
        degraded = status["state"] != "ready"
        status["degraded"] = degraded
        if navigator is None:
            if OBS.enabled:
                _C_UNDELIVERED.inc(len(pairs))
            reason = "no surviving trees; recovery has not completed"
            return [
                {"status": "undelivered", "result": None, "error": reason,
                 "service": status}
                for _ in pairs
            ]
        # Use the snapshot navigator's own metric: in dynamic mode
        # `service.metric` tracks the newest generation, which may be
        # one mutation ahead of the snapshot this batch answers on.
        metric = getattr(navigator, "metric", None) or self.service.metric
        n = metric.n
        for u, v in pairs:
            if not (0 <= u < n and 0 <= v < n):
                # The server validates ids before admission; this guards
                # direct engine users with a full-batch typed failure.
                raise ValueError(f"point pair ({u}, {v}) outside [0, {n})")
        if op == "distance":
            payloads = self._distances(navigator, pairs)
        elif op == "path":
            payloads = self._paths(navigator, pairs)
        elif op == "route":
            if navigator.cover is None:
                # Memory-mapped navigators carry no python cover, and
                # the Theorem 5.1 routing scheme is built from one:
                # route queries degrade to a typed refusal instead of
                # crashing the batch.
                if OBS.enabled:
                    _C_UNDELIVERED.inc(len(pairs))
                reason = (
                    "routing unavailable: the service is memory-mapped "
                    "(no cover object to build routing tables from)"
                )
                return [
                    {"status": "undelivered", "result": None,
                     "error": reason, "service": status}
                    for _ in pairs
                ]
            payloads = self._routes(navigator, status["generation"], pairs)
        else:
            raise ValueError(f"unknown batch op {op!r}")
        label = "degraded" if degraded else "ok"
        if degraded and OBS.enabled:
            _C_DEGRADED.inc(len(pairs))
        for payload in payloads:
            if payload.get("status") is None:
                payload["status"] = label
            payload.setdefault("error", None)
            payload["service"] = status
        return payloads

    # -- per-op kernels --------------------------------------------------

    def _distances(self, navigator, pairs) -> List[Dict[str, Any]]:
        distances = navigator.approx_distances(pairs)
        return [
            {"status": None, "result": {"distance": float(d)}}
            for d in distances
        ]

    def _paths(self, navigator, pairs) -> List[Dict[str, Any]]:
        metric = getattr(navigator, "metric", None) or self.service.metric
        payloads: List[Dict[str, Any]] = []
        for (u, v), (path, tree) in zip(pairs, navigator.find_paths(pairs)):
            weight = navigator.path_weight(path)
            base = metric.distance(u, v)
            payloads.append({
                "status": None,
                "result": {
                    "path": list(path),
                    "hops": len(path) - 1,
                    "weight": weight,
                    "stretch": weight / base if base > 0 else 1.0,
                    "tree": tree,
                },
            })
        return payloads

    def _routes(self, navigator, generation, pairs) -> List[Dict[str, Any]]:
        scheme = self._router_for(navigator, generation)
        metric = getattr(navigator, "metric", None) or self.service.metric
        payloads: List[Dict[str, Any]] = []
        for u, v in pairs:
            if u == v:
                payloads.append({
                    "status": None,
                    "result": {"path": [u], "hops": 0, "weight": 0.0,
                               "stretch": 1.0},
                })
                continue
            outcome = scheme.route(u, v)
            base = metric.distance(u, v)
            delivered = (
                bool(outcome.path)
                and outcome.path[0] == u
                and outcome.path[-1] == v
            )
            payloads.append({
                "status": None if delivered else "undelivered",
                "result": {
                    "path": list(outcome.path),
                    "hops": outcome.hops,
                    "weight": outcome.weight,
                    "stretch": (
                        outcome.weight / base if base > 0 else 1.0
                    ),
                } if delivered else None,
                "error": None if delivered else "routing did not deliver",
            })
        return payloads

    def _router_for(self, navigator, generation) -> MetricRoutingScheme:
        with self._router_lock:
            scheme = self._routers.get(generation)
            if scheme is None:
                metric = (
                    getattr(navigator, "metric", None) or self.service.metric
                )
                scheme = MetricRoutingScheme(
                    metric, navigator.cover, seed=self.router_seed
                )
                self._routers[generation] = scheme
                while len(self._routers) > self.ROUTER_CACHE:
                    self._routers.pop(next(iter(self._routers)))
            return scheme
