"""Query-serving daemon: load a checkpoint once, serve batched traffic.

The subsystem that turns the library into a long-lived service
(ROADMAP item 1): ``python -m repro serve`` loads an audited checkpoint
through :class:`~repro.checkpoint.recovery.CheckpointService` and
serves concurrent ``distance``/``path``/``route`` requests over a
line-delimited-JSON TCP front, with robustness as the design center —

* admission batching into the vectorized ``find_paths`` /
  ``approx_distances`` kernels (:mod:`repro.serve.batcher`),
* bounded queues with explicit ``overloaded`` shedding and per-request
  deadlines with ``timeout`` responses (:mod:`repro.serve.policy`),
* live-traffic graceful degradation: a chaos controller can kill trees
  mid-traffic, answers degrade to labelled best-effort results from
  the survivors while recovery runs on a background thread
  (:mod:`repro.serve.chaos`),
* health/readiness plus the observability registry as Prometheus text
  on the same port (:mod:`repro.serve.server`),
* live mutation under churn: ``insert``/``delete``/``compact`` verbs
  journal (fsync) before patching the cover and swap generations
  atomically; in-flight batches answer on the pre-mutation snapshot
  (:mod:`repro.dynamic`, enabled with ``serve --dynamic``).

See ``docs/SERVING.md`` for the protocol and semantics.
"""

from .batcher import MicroBatcher
from .chaos import ChaosController
from .client import ServeClient, wait_for_server
from .engine import QueryEngine
from .policy import AdmissionPolicy
from .protocol import (
    ADMIN_OPS,
    MUTATION_OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    ProtocolError,
    Request,
    encode_line,
    make_response,
    parse_request,
)
from .server import SpannerServer, ThreadedServer

__all__ = [
    "ADMIN_OPS",
    "MUTATION_OPS",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "AdmissionPolicy",
    "ChaosController",
    "MicroBatcher",
    "ProtocolError",
    "QueryEngine",
    "Request",
    "ServeClient",
    "SpannerServer",
    "ThreadedServer",
    "encode_line",
    "make_response",
    "parse_request",
    "wait_for_server",
]
