"""Admission, batching, deadline and retry policy for the daemon.

One frozen dataclass holds every robustness knob so the server, the
bench harness and the tests configure identical behavior from one
place.  The semantics (enforced by :mod:`repro.serve.batcher`):

* **Bounded queue.**  At most ``max_queue`` requests may be waiting for
  a batch slot; request ``max_queue + 1`` is shed immediately with an
  ``overloaded`` response — explicit load shedding instead of unbounded
  latency growth.
* **Micro-batches.**  Waiting requests are coalesced into batches of at
  most ``max_batch`` and executed through the vectorized
  ``find_paths``/``approx_distances`` kernels.  A batch flushes as soon
  as it is full, or ``flush_interval`` seconds after work first became
  available — the short timer bounds the latency cost of coalescing.
* **Deadlines.**  Every request carries an absolute deadline (its
  ``deadline_ms``, else ``default_deadline``).  A request whose
  deadline passes — in the queue or mid-execution — resolves to a
  ``timeout`` response; it never hangs and is never silently dropped.
* **Retry with backoff.**  A batch execution that raises is retried up
  to ``max_retries`` times, sleeping ``backoff_base * backoff_factor^i``
  between attempts; only then do its requests fail with ``error``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The daemon's robustness knobs (see module docstring)."""

    max_batch: int = 32
    max_queue: int = 256
    flush_interval: float = 0.002
    default_deadline: float = 2.0
    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_factor: float = 4.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0, got {self.flush_interval}"
            )
        if self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base >= 0 and backoff_factor >= 1 required")

    def deadline_at(self, now: float, deadline_ms: Optional[float]) -> float:
        """The absolute deadline for a request arriving at ``now``."""
        if deadline_ms is None:
            return now + self.default_deadline
        return now + deadline_ms / 1000.0

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based)."""
        return self.backoff_base * (self.backoff_factor ** attempt)
