"""General (non-doubling) finite metrics.

Used to exercise the general-metric rows of Table 1 / Theorems 1.2 and
1.3: Ramsey tree covers need inputs that are *not* doubling, so besides
explicit distance matrices we provide shortest-path metrics of random
graphs and uniform-ish random metrics built by metric completion.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Sequence

import numpy as np

from .base import Metric

__all__ = [
    "MatrixMetric",
    "random_metric",
    "graph_metric",
    "random_graph_metric",
]


class MatrixMetric(Metric):
    """A metric given by an explicit symmetric distance matrix."""

    supports_batch = True

    def __init__(self, matrix: Sequence[Sequence[float]]):
        self.matrix = np.asarray(matrix, dtype=float)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("distance matrix must be square")
        super().__init__(self.matrix.shape[0])

    def distance(self, u: int, v: int) -> float:
        return float(self.matrix[u, v])

    def distances_from(self, u: int) -> np.ndarray:
        return self.matrix[u]

    def pairwise(self, rows, cols) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.matrix[np.ix_(rows, cols)]

    def pair_distances(self, us, vs) -> np.ndarray:
        if len(us) != len(vs):
            raise ValueError("us and vs must have equal length")
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        return self.matrix[us, vs]

    def ball_many(self, centers, radius, within=None) -> List[List[int]]:
        centers = np.asarray(centers, dtype=np.int64)
        if within is None:
            block = self.matrix[centers] <= radius
            return [np.nonzero(row)[0].tolist() for row in block]
        within = np.asarray(within, dtype=np.int64)
        block = self.matrix[np.ix_(centers, within)] <= radius
        return [within[np.nonzero(row)[0]].tolist() for row in block]

    def ball(self, center: int, radius: float) -> List[int]:
        """Vectorized ball query over the matrix row."""
        return np.nonzero(self.matrix[center] <= radius)[0].tolist()


def random_metric(n: int, seed: int = 0, spread: float = 10.0) -> MatrixMetric:
    """A random metric via shortcutting random weights (metric completion).

    Draw i.i.d. weights in ``[1, spread]`` on the complete graph and take
    all-pairs shortest paths (Floyd–Warshall, vectorized); the result is
    a genuine metric with no doubling structure.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(1.0, spread, size=(n, n))
    matrix = np.minimum(matrix, matrix.T)
    np.fill_diagonal(matrix, 0.0)
    for k in range(n):
        shortcut = matrix[:, k, None] + matrix[None, k, :]
        np.minimum(matrix, shortcut, out=matrix)
    return MatrixMetric(matrix)


def graph_metric(n: int, edges: Sequence, sources: "range | None" = None) -> MatrixMetric:
    """Shortest-path metric of a weighted undirected graph edge list."""
    adj: List[List] = [[] for _ in range(n)]
    for u, v, w in edges:
        adj[u].append((v, float(w)))
        adj[v].append((u, float(w)))
    matrix = np.full((n, n), np.inf)
    for s in sources if sources is not None else range(n):
        dist = matrix[s]
        dist[s] = 0.0
        heap = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
    if np.isinf(matrix).any():
        raise ValueError("graph is not connected")
    return MatrixMetric(matrix)


def random_graph_metric(n: int, degree: int = 4, seed: int = 0) -> MatrixMetric:
    """Shortest-path metric of a random connected graph.

    A random spanning path plus ``degree*n/2`` random chords, weighted
    uniformly — expander-like, hence far from doubling.
    """
    rng = random.Random(seed)
    edges = [(v - 1, v, rng.uniform(1.0, 10.0)) for v in range(1, n)]
    for _ in range(degree * n // 2):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, rng.uniform(1.0, 10.0)))
    return graph_metric(n, edges)
