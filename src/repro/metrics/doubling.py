"""Net hierarchies and doubling-metric utilities.

A ``2^i``-net of a metric (Section 4.2 of the paper) is a subset ``N``
with pairwise distances ``> 2^i`` that covers every point within ``2^i``.
:class:`NetHierarchy` maintains nested nets ``N_{i_min} ⊇ ... ⊇ N_{i_max}``
— the backbone of the robust tree cover construction (Theorem 4.1).

Levels may be negative; level ``i`` always corresponds to radius ``2^i``.

The construction paths consume the batch kernel layer of
:class:`~repro.metrics.base.Metric`: for batch-capable metrics the greedy
net prefetches every candidate ball in one vectorized sweep (a KD-tree
sub-tree restricted to the candidates for Euclidean inputs) instead of
issuing one python-level ball query per net point.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from .base import Metric
from .euclidean import EuclideanMetric

__all__ = ["NetHierarchy", "greedy_net", "doubling_constant_estimate", "scale_levels"]

#: Below this many candidates a python loop beats batch-call setup.
_PREFETCH_MIN = 16


def greedy_net(metric: Metric, candidates: Sequence[int], radius: float) -> List[int]:
    """A greedy ``radius``-net of ``candidates``.

    Iterates candidates in order, keeping each point not yet covered and
    marking its ``radius``-ball as covered.  The kept set has pairwise
    distance ``> radius`` and covers every candidate within ``radius``.

    Batch-capable metrics prefetch all candidate balls in one vectorized
    sweep; the output is point-for-point identical to the scalar path
    (the greedy scan only consumes ball *membership*, which both paths
    compute exactly).
    """
    candidates = list(candidates)
    if isinstance(metric, EuclideanMetric) and len(candidates) >= _PREFETCH_MIN:
        # Position-space sweep: one parallel KD-tree ball query over a
        # sub-tree of just the candidates, then a boolean-mask scan —
        # no id translation, no per-point python KD calls.
        pts = metric.points[candidates]
        hits = cKDTree(pts).query_ball_point(pts, radius, workers=-1)
        covered = np.zeros(len(candidates), dtype=bool)
        net: List[int] = []
        for index, p in enumerate(candidates):
            if covered[index]:
                continue
            net.append(p)
            covered[hits[index]] = True
        return net
    if metric.supports_batch and len(candidates) >= _PREFETCH_MIN:
        balls = metric.ball_many(candidates, radius, within=candidates)
        covered_ids = set()
        net = []
        for index, p in enumerate(candidates):
            if p in covered_ids:
                continue
            net.append(p)
            covered_ids.update(balls[index])
        return net
    candidate_set = set(candidates)
    covered = set()
    net = []
    for p in candidates:
        if p in covered:
            continue
        net.append(p)
        for q in metric.ball(p, radius):
            if q in candidate_set:
                covered.add(q)
    return net


def scale_levels(
    metric: Metric, sample_pairs_count: int = 2000, exact_threshold: int = 2048
) -> "tuple[int, int]":
    """The (i_min, i_max) level range spanning min distance to diameter.

    ``2^{i_min}`` is below the smallest positive pairwise distance and
    ``2^{i_max}`` is at least the diameter.  Exact via KD-tree nearest
    neighbors for Euclidean inputs and via vectorized row sweeps for any
    batch-capable metric; for purely scalar metrics the quadratic scan
    is kept up to ``exact_threshold`` points and sampled above it (with
    two safety levels subtracted from the estimated minimum, and a
    triangle-inequality upper bound on the diameter).
    """
    if isinstance(metric, EuclideanMetric):
        dist, _ = metric.kdtree.query(metric.points, k=2)
        d_min = float(np.min(dist[:, 1]))
        lo = metric.points.min(axis=0)
        hi = metric.points.max(axis=0)
        d_max = float(np.linalg.norm(hi - lo))
        slack = 0
    elif metric.supports_batch:
        d_min = math.inf
        d_max = 0.0
        for u in range(metric.n - 1):
            row = metric.distances_from(u)[u + 1 :]
            positive = row[row > 0]
            if positive.size:
                d_min = min(d_min, float(positive.min()))
            if row.size:
                d_max = max(d_max, float(row.max()))
        slack = 0
    elif metric.n <= exact_threshold:
        d_min = math.inf
        d_max = 0.0
        for u in range(metric.n):
            for v in range(u + 1, metric.n):
                d = metric.distance(u, v)
                if d > 0:
                    d_min = min(d_min, d)
                d_max = max(d_max, d)
        slack = 0
    else:
        # Sampled estimate for big scalar-only metrics: nearest sampled
        # neighbor for the minimum, anchor sweep (triangle inequality
        # doubles it into an upper bound) for the diameter.
        from .base import sample_pairs as _sample_pairs

        d_min = math.inf
        for u, v in _sample_pairs(metric.n, sample_pairs_count, seed=0):
            d = metric.distance(u, v)
            if d > 0:
                d_min = min(d_min, d)
        anchor_row = [metric.distance(0, v) for v in range(metric.n)]
        d_max = 2.0 * max(anchor_row)
        slack = 2  # the sample may have missed a closer pair
    if d_min == 0 or math.isinf(d_min):
        raise ValueError("metric has duplicate points or a single point")
    i_min = math.floor(math.log2(d_min)) - 1 - slack
    i_max = math.ceil(math.log2(max(d_max, d_min))) + 1
    return i_min, i_max


class NetHierarchy:
    """Nested ``2^i``-nets ``N_i`` for ``i_min <= i <= i_max``.

    ``N_{i_min}`` contains every point (``2^{i_min}`` is below the
    minimum distance, so the whole point set is a valid net);
    ``N_{i_max}`` is typically a single point.
    """

    def __init__(self, metric: Metric, i_min: Optional[int] = None, i_max: Optional[int] = None):
        self.metric = metric
        if i_min is None or i_max is None:
            lo, hi = scale_levels(metric)
            i_min = lo if i_min is None else i_min
            i_max = hi if i_max is None else i_max
        if i_max < i_min:
            raise ValueError("i_max must be >= i_min")
        self.i_min = i_min
        self.i_max = i_max
        self.nets: Dict[int, List[int]] = {}
        self._kdtrees: Dict[int, cKDTree] = {}

        current = list(range(metric.n))
        self.nets[i_min] = current
        for i in range(i_min + 1, i_max + 1):
            current = greedy_net(metric, current, 2.0**i)
            self.nets[i] = current

    def net(self, i: int) -> List[int]:
        """Net at level ``i`` (clamped to the built range)."""
        return self.nets[min(max(i, self.i_min), self.i_max)]

    def _level_kdtree(self, level: int) -> cKDTree:
        tree = self._kdtrees.get(level)
        if tree is None:
            pts = self.metric.points[self.nets[level]]
            tree = cKDTree(pts)
            self._kdtrees[level] = tree
        return tree

    def net_points_within(self, i: int, point: int, radius: float) -> List[int]:
        """Points of ``N_i`` within ``radius`` of ``point``."""
        level = min(max(i, self.i_min), self.i_max)
        if isinstance(self.metric, EuclideanMetric):
            tree = self._level_kdtree(level)
            hits = tree.query_ball_point(self.metric.points[point], radius)
            net = self.nets[level]
            return [net[j] for j in hits]
        if self.metric.supports_batch:
            net = self.nets[level]
            row = self.metric.pairwise([point], net)[0]
            return [net[j] for j in np.nonzero(row <= radius)[0]]
        return [
            q for q in self.nets[level] if self.metric.distance(point, q) <= radius
        ]

    def net_points_within_many(
        self, i: int, points: Sequence[int], radius: float
    ) -> List[List[int]]:
        """:meth:`net_points_within` for many query points in one sweep.

        One batched ball query (restricted to the level's net) instead of
        ``len(points)`` python-level calls — the shape the pairing-cover
        and gather sweeps of the robust tree cover need.
        """
        level = min(max(i, self.i_min), self.i_max)
        net = self.nets[level]
        if isinstance(self.metric, EuclideanMetric):
            tree = self._level_kdtree(level)
            hits = tree.query_ball_point(self.metric.points[list(points)], radius)
            return [[net[j] for j in h] for h in hits]
        if self.metric.supports_batch:
            return self.metric.ball_many(points, radius, within=net)
        return [
            [q for q in net if self.metric.distance(p, q) <= radius] for p in points
        ]

    def verify(self) -> None:
        """Check the net properties (used by tests; O(n^2) per level);
        raises :class:`~repro.errors.InvariantViolation` on violation."""
        from ..errors import check

        for i in range(self.i_min + 1, self.i_max + 1):
            radius = 2.0**i
            net = self.nets[i]
            prev = self.nets[i - 1]
            net_set = set(net)
            check(net_set <= set(prev), f"nets not nested at level {i}")
            for a_idx, a in enumerate(net):
                for b in net[a_idx + 1 :]:
                    check(
                        self.metric.distance(a, b) > radius,
                        f"net points too close at level {i}",
                    )
            for p in prev:
                check(
                    any(self.metric.distance(p, q) <= radius for q in net),
                    f"point {p} uncovered at level {i}",
                )


def doubling_constant_estimate(metric: Metric, samples: int = 30, seed: int = 0) -> float:
    """A crude empirical doubling-constant estimate.

    For sampled (center, radius) pairs, greedily covers the ball with
    half-radius balls and returns the largest cover size found.  Used in
    tests to confirm Euclidean inputs look doubling and expander metrics
    do not.
    """
    import random as _random

    rng = _random.Random(seed)
    worst = 1.0
    for _ in range(samples):
        center = rng.randrange(metric.n)
        far = max(range(metric.n), key=lambda v: metric.distance(center, v))
        radius = metric.distance(center, far) * rng.uniform(0.3, 1.0)
        if radius <= 0:
            continue
        ball = metric.ball(center, radius)
        cover = greedy_net(metric, ball, radius / 2.0)
        worst = max(worst, float(len(cover)))
    return worst
