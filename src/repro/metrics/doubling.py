"""Net hierarchies and doubling-metric utilities.

A ``2^i``-net of a metric (Section 4.2 of the paper) is a subset ``N``
with pairwise distances ``> 2^i`` that covers every point within ``2^i``.
:class:`NetHierarchy` maintains nested nets ``N_{i_min} ⊇ ... ⊇ N_{i_max}``
— the backbone of the robust tree cover construction (Theorem 4.1).

Levels may be negative; level ``i`` always corresponds to radius ``2^i``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from .base import Metric
from .euclidean import EuclideanMetric

__all__ = ["NetHierarchy", "greedy_net", "doubling_constant_estimate", "scale_levels"]


def greedy_net(metric: Metric, candidates: Sequence[int], radius: float) -> List[int]:
    """A greedy ``radius``-net of ``candidates``.

    Iterates candidates in order, keeping each point not yet covered and
    marking its ``radius``-ball as covered.  The kept set has pairwise
    distance ``> radius`` and covers every candidate within ``radius``.
    """
    candidate_set = set(candidates)
    covered = set()
    net: List[int] = []
    for p in candidates:
        if p in covered:
            continue
        net.append(p)
        for q in metric.ball(p, radius):
            if q in candidate_set:
                covered.add(q)
    return net


def scale_levels(metric: Metric, sample_pairs_count: int = 2000) -> "tuple[int, int]":
    """The (i_min, i_max) level range spanning min distance to diameter.

    ``2^{i_min}`` is below the smallest positive pairwise distance and
    ``2^{i_max}`` is at least the diameter.  For large inputs the minimum
    is estimated via nearest neighbors (exact for Euclidean).
    """
    if isinstance(metric, EuclideanMetric):
        dist, _ = metric.kdtree.query(metric.points, k=2)
        d_min = float(np.min(dist[:, 1]))
        lo = metric.points.min(axis=0)
        hi = metric.points.max(axis=0)
        d_max = float(np.linalg.norm(hi - lo))
    else:
        d_min = math.inf
        d_max = 0.0
        for u in range(metric.n):
            for v in range(u + 1, metric.n):
                d = metric.distance(u, v)
                if d > 0:
                    d_min = min(d_min, d)
                d_max = max(d_max, d)
    if d_min == 0 or math.isinf(d_min):
        raise ValueError("metric has duplicate points or a single point")
    i_min = math.floor(math.log2(d_min)) - 1
    i_max = math.ceil(math.log2(max(d_max, d_min))) + 1
    return i_min, i_max


class NetHierarchy:
    """Nested ``2^i``-nets ``N_i`` for ``i_min <= i <= i_max``.

    ``N_{i_min}`` contains every point (``2^{i_min}`` is below the
    minimum distance, so the whole point set is a valid net);
    ``N_{i_max}`` is typically a single point.
    """

    def __init__(self, metric: Metric, i_min: Optional[int] = None, i_max: Optional[int] = None):
        self.metric = metric
        if i_min is None or i_max is None:
            lo, hi = scale_levels(metric)
            i_min = lo if i_min is None else i_min
            i_max = hi if i_max is None else i_max
        if i_max < i_min:
            raise ValueError("i_max must be >= i_min")
        self.i_min = i_min
        self.i_max = i_max
        self.nets: Dict[int, List[int]] = {}
        self._kdtrees: Dict[int, cKDTree] = {}

        current = list(range(metric.n))
        self.nets[i_min] = current
        for i in range(i_min + 1, i_max + 1):
            current = greedy_net(metric, current, 2.0**i)
            self.nets[i] = current

    def net(self, i: int) -> List[int]:
        """Net at level ``i`` (clamped to the built range)."""
        return self.nets[min(max(i, self.i_min), self.i_max)]

    def net_points_within(self, i: int, point: int, radius: float) -> List[int]:
        """Points of ``N_i`` within ``radius`` of ``point``."""
        level = min(max(i, self.i_min), self.i_max)
        if isinstance(self.metric, EuclideanMetric):
            tree = self._kdtrees.get(level)
            if tree is None:
                pts = self.metric.points[self.nets[level]]
                tree = cKDTree(pts)
                self._kdtrees[level] = tree
            hits = tree.query_ball_point(self.metric.points[point], radius)
            net = self.nets[level]
            return [net[j] for j in hits]
        return [
            q for q in self.nets[level] if self.metric.distance(point, q) <= radius
        ]

    def verify(self) -> None:
        """Check the net properties (used by tests; O(n^2) per level);
        raises :class:`~repro.errors.InvariantViolation` on violation."""
        from ..errors import check

        for i in range(self.i_min + 1, self.i_max + 1):
            radius = 2.0**i
            net = self.nets[i]
            prev = self.nets[i - 1]
            net_set = set(net)
            check(net_set <= set(prev), f"nets not nested at level {i}")
            for a_idx, a in enumerate(net):
                for b in net[a_idx + 1 :]:
                    check(
                        self.metric.distance(a, b) > radius,
                        f"net points too close at level {i}",
                    )
            for p in prev:
                check(
                    any(self.metric.distance(p, q) <= radius for q in net),
                    f"point {p} uncovered at level {i}",
                )


def doubling_constant_estimate(metric: Metric, samples: int = 30, seed: int = 0) -> float:
    """A crude empirical doubling-constant estimate.

    For sampled (center, radius) pairs, greedily covers the ball with
    half-radius balls and returns the largest cover size found.  Used in
    tests to confirm Euclidean inputs look doubling and expander metrics
    do not.
    """
    import random as _random

    rng = _random.Random(seed)
    worst = 1.0
    for _ in range(samples):
        center = rng.randrange(metric.n)
        far = max(range(metric.n), key=lambda v: metric.distance(center, v))
        radius = metric.distance(center, far) * rng.uniform(0.3, 1.0)
        if radius <= 0:
            continue
        ball = metric.ball(center, radius)
        cover = greedy_net(metric, ball, radius / 2.0)
        worst = max(worst, float(len(cover)))
    return worst
