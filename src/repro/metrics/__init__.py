"""Metric-space substrates: Euclidean, general, tree, planar, doubling nets."""

from .base import Metric, aspect_ratio, check_metric_axioms, sample_pairs
from .doubling import NetHierarchy, doubling_constant_estimate, greedy_net, scale_levels
from .euclidean import EuclideanMetric, clustered_points, grid_points, random_points
from .general import MatrixMetric, graph_metric, random_graph_metric, random_metric
from .kernels import CachedMetric
from .planar import PlanarGraphMetric, delaunay_metric, grid_graph_metric
from .splittree import FairSplitTree, SplitTreeNode
from .tree_metric import TreeMetric
from .workloads import (
    hierarchical_points,
    power_law_graph_metric,
    ring_of_cliques_metric,
    road_network_points,
)

__all__ = [
    "Metric",
    "aspect_ratio",
    "check_metric_axioms",
    "sample_pairs",
    "NetHierarchy",
    "doubling_constant_estimate",
    "greedy_net",
    "scale_levels",
    "EuclideanMetric",
    "clustered_points",
    "grid_points",
    "random_points",
    "MatrixMetric",
    "CachedMetric",
    "graph_metric",
    "random_graph_metric",
    "random_metric",
    "PlanarGraphMetric",
    "delaunay_metric",
    "grid_graph_metric",
    "TreeMetric",
    "FairSplitTree",
    "SplitTreeNode",
    "hierarchical_points",
    "power_law_graph_metric",
    "ring_of_cliques_metric",
    "road_network_points",
]
