"""Euclidean point-set metrics, with KD-tree accelerated neighbor queries.

Low-dimensional Euclidean spaces are the paper's motivating setting; the
doubling-metric constructions (net hierarchies, robust tree covers) use
the KD-tree batch kernels (:meth:`EuclideanMetric.ball_many`,
:meth:`EuclideanMetric.nearest_many`) to avoid quadratic scans.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree
from scipy.spatial.distance import cdist

from ..observability import OBS
from .base import Metric

__all__ = [
    "EuclideanMetric",
    "random_points",
    "clustered_points",
    "grid_points",
]

_C_SCALAR = OBS.registry.counter("kernel.euclidean.scalar_calls")
_C_BATCH = OBS.registry.counter("kernel.euclidean.batch_calls")
_C_BATCH_VALUES = OBS.registry.counter("kernel.euclidean.batch_values")


class EuclideanMetric(Metric):
    """The metric induced by an ``(n, d)`` array of points."""

    supports_batch = True

    def __init__(self, points: Sequence[Sequence[float]]):
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValueError("points must be a 2-D array (n, d)")
        super().__init__(len(self.points))
        self.dim = self.points.shape[1]
        # Plain-python coordinate rows: the scalar distance below runs
        # millions of times inside decompositions, and a float-list loop
        # with math.sqrt beats any per-call numpy allocation by ~4x.
        self._coords: List[List[float]] = self.points.tolist()
        self._kdtree: Optional[cKDTree] = None

    @property
    def kdtree(self) -> cKDTree:
        if self._kdtree is None:
            self._kdtree = cKDTree(self.points)
        return self._kdtree

    def distance(self, u: int, v: int) -> float:
        if OBS.enabled:
            _C_SCALAR.inc()
        pu = self._coords[u]
        pv = self._coords[v]
        s = 0.0
        for a, b in zip(pu, pv):
            t = a - b
            s += t * t
        return math.sqrt(s)

    # ------------------------------------------------------------------
    # Batch kernels (all C-vectorized)

    def distances_from(self, u: int) -> np.ndarray:
        """Vectorized distances from ``u`` to every point."""
        if OBS.enabled:
            _C_BATCH.inc()
            _C_BATCH_VALUES.inc(self.n)
        return np.linalg.norm(self.points - self.points[u], axis=1)

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if OBS.enabled:
            _C_BATCH.inc()
            _C_BATCH_VALUES.inc(rows.size * cols.size)
        return cdist(self.points[rows], self.points[cols])

    def pair_distances(self, us: Sequence[int], vs: Sequence[int]) -> np.ndarray:
        if len(us) != len(vs):
            raise ValueError("us and vs must have equal length")
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if OBS.enabled:
            _C_BATCH.inc()
            _C_BATCH_VALUES.inc(us.size)
        return np.linalg.norm(self.points[us] - self.points[vs], axis=1)

    def ball_many(
        self,
        centers: Sequence[int],
        radius: float,
        within: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Batched KD-tree ball queries (one C call for all centers).

        With ``within``, a KD-tree over just that candidate subset is
        built, so the work scales with the candidate density rather than
        the full point set — the shape net constructions sweep.
        """
        centers = np.asarray(centers, dtype=np.int64)
        if within is None:
            hits = self.kdtree.query_ball_point(
                self.points[centers], radius, return_sorted=True, workers=-1
            )
            return [list(h) for h in hits]
        within = np.asarray(within, dtype=np.int64)
        subtree = cKDTree(self.points[within])
        hits = subtree.query_ball_point(
            self.points[centers], radius, return_sorted=True, workers=-1
        )
        return [within[h].tolist() for h in hits]

    def nearest_many(
        self,
        points: Sequence[int],
        candidates: Sequence[int],
        return_distance: bool = False,
    ):
        candidates = np.asarray(list(candidates), dtype=np.int64)
        if candidates.size == 0:
            raise ValueError("nearest_many needs at least one candidate")
        points = np.asarray(points, dtype=np.int64)
        subtree = cKDTree(self.points[candidates])
        dist, idx = subtree.query(self.points[points], k=1)
        ids = candidates[idx]
        if return_distance:
            return ids, np.asarray(dist, dtype=float)
        return ids

    # ------------------------------------------------------------------
    # Scalar neighborhood queries

    def neighbors_within(self, u: int, radius: float) -> List[int]:
        """Indices of points within ``radius`` of point ``u`` (inclusive)."""
        return sorted(self.kdtree.query_ball_point(self.points[u], radius))

    def ball(self, center: int, radius: float) -> List[int]:  # noqa: D102
        return self.neighbors_within(center, radius)


def random_points(n: int, dim: int = 2, seed: int = 0, scale: float = 1000.0) -> EuclideanMetric:
    """``n`` uniform points in ``[0, scale]^dim``."""
    rng = np.random.default_rng(seed)
    return EuclideanMetric(rng.uniform(0.0, scale, size=(n, dim)))


def clustered_points(
    n: int, dim: int = 2, clusters: int = 8, seed: int = 0, scale: float = 1000.0
) -> EuclideanMetric:
    """Points drawn around random cluster centers — high aspect ratio.

    This distribution stresses net hierarchies across many scales, the
    regime where bounded hop-diameter spanners beat ``O(log rho)``-hop
    oracles (Section 1.1 of the paper).
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, scale, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    jitter = rng.normal(0.0, scale / (100.0 * clusters), size=(n, dim))
    return EuclideanMetric(centers[assignment] + jitter)


def grid_points(side: int, dim: int = 2, spacing: float = 1.0) -> EuclideanMetric:
    """A ``side^dim`` regular grid (deterministic, worst-case-ish packing)."""
    axes = [np.arange(side, dtype=float) * spacing] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    return EuclideanMetric(pts)
