"""Euclidean point-set metrics, with KD-tree accelerated neighbor queries.

Low-dimensional Euclidean spaces are the paper's motivating setting; the
doubling-metric constructions (net hierarchies, robust tree covers) use
:meth:`EuclideanMetric.neighbors_within` to avoid quadratic scans.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from .base import Metric

__all__ = [
    "EuclideanMetric",
    "random_points",
    "clustered_points",
    "grid_points",
]


class EuclideanMetric(Metric):
    """The metric induced by an ``(n, d)`` array of points."""

    def __init__(self, points: Sequence[Sequence[float]]):
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValueError("points must be a 2-D array (n, d)")
        super().__init__(len(self.points))
        self.dim = self.points.shape[1]
        self._kdtree: Optional[cKDTree] = None

    @property
    def kdtree(self) -> cKDTree:
        if self._kdtree is None:
            self._kdtree = cKDTree(self.points)
        return self._kdtree

    def distance(self, u: int, v: int) -> float:
        return float(np.linalg.norm(self.points[u] - self.points[v]))

    def distances_from(self, u: int) -> np.ndarray:
        """Vectorized distances from ``u`` to every point."""
        return np.linalg.norm(self.points - self.points[u], axis=1)

    def neighbors_within(self, u: int, radius: float) -> List[int]:
        """Indices of points within ``radius`` of point ``u`` (inclusive)."""
        return sorted(self.kdtree.query_ball_point(self.points[u], radius))

    def ball(self, center: int, radius: float) -> List[int]:  # noqa: D102
        return self.neighbors_within(center, radius)


def random_points(n: int, dim: int = 2, seed: int = 0, scale: float = 1000.0) -> EuclideanMetric:
    """``n`` uniform points in ``[0, scale]^dim``."""
    rng = np.random.default_rng(seed)
    return EuclideanMetric(rng.uniform(0.0, scale, size=(n, dim)))


def clustered_points(
    n: int, dim: int = 2, clusters: int = 8, seed: int = 0, scale: float = 1000.0
) -> EuclideanMetric:
    """Points drawn around random cluster centers — high aspect ratio.

    This distribution stresses net hierarchies across many scales, the
    regime where bounded hop-diameter spanners beat ``O(log rho)``-hop
    oracles (Section 1.1 of the paper).
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, scale, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    jitter = rng.normal(0.0, scale / (100.0 * clusters), size=(n, dim))
    return EuclideanMetric(centers[assignment] + jitter)


def grid_points(side: int, dim: int = 2, spacing: float = 1.0) -> EuclideanMetric:
    """A ``side^dim`` regular grid (deterministic, worst-case-ish packing)."""
    axes = [np.arange(side, dtype=float) * spacing] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    return EuclideanMetric(pts)
