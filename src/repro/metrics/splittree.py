"""Fair split trees for Euclidean point sets (Callahan–Kosaraju).

The fair split tree is the classic substrate behind the Euclidean
"Dumbbell Tree" theorem [ADM+95] that the paper's Robust Tree Cover
generalizes: a hierarchical bounding-box decomposition obtained by
always halving the longest side.  We use it to build well-separated
pair decompositions (:mod:`repro.spanners.wspd`) — a baseline spanner
family and exact/approximate proximity utilities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .euclidean import EuclideanMetric

__all__ = ["SplitTreeNode", "FairSplitTree"]


class SplitTreeNode:
    """One node: a set of points with its bounding box."""

    __slots__ = ("points", "low", "high", "left", "right", "rep")

    def __init__(self, points: np.ndarray, coords: np.ndarray):
        self.points = points  # indices into the metric's point array
        self.low = coords.min(axis=0)
        self.high = coords.max(axis=0)
        self.left: Optional["SplitTreeNode"] = None
        self.right: Optional["SplitTreeNode"] = None
        self.rep = int(points[0])

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def radius(self) -> float:
        """Radius of the bounding box's circumscribed ball."""
        return float(np.linalg.norm(self.high - self.low)) / 2.0

    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def size(self) -> int:
        return len(self.points)


class FairSplitTree:
    """Recursive longest-side midpoint splits over a Euclidean metric."""

    def __init__(self, metric: EuclideanMetric):
        self.metric = metric
        self.root = self._build(np.arange(metric.n, dtype=np.int64))
        self.node_count = self._count(self.root)

    def _build(self, points: np.ndarray) -> SplitTreeNode:
        coords = self.metric.points[points]
        node = SplitTreeNode(points, coords)
        if len(points) == 1:
            return node
        extent = node.high - node.low
        axis = int(np.argmax(extent))
        midpoint = (node.low[axis] + node.high[axis]) / 2.0
        mask = coords[:, axis] <= midpoint
        left, right = points[mask], points[~mask]
        if len(left) == 0 or len(right) == 0:
            # Degenerate (duplicate coordinates on the split axis):
            # split by rank instead to guarantee progress.
            order = points[np.argsort(coords[:, axis], kind="stable")]
            half = len(points) // 2
            left, right = order[:half], order[half:]
        node.left = self._build(left)
        node.right = self._build(right)
        return node

    def _count(self, node: SplitTreeNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + self._count(node.left) + self._count(node.right)

    def depth(self) -> int:
        def walk(node):
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def verify(self) -> None:
        """Check the split-tree invariants (tests only); raises
        :class:`~repro.errors.InvariantViolation` on violation."""
        from ..errors import check

        def walk(node: SplitTreeNode) -> None:
            coords = self.metric.points[node.points]
            check(bool(np.all(coords >= node.low - 1e-9)), "point below node box")
            check(bool(np.all(coords <= node.high + 1e-9)), "point above node box")
            if node.is_leaf:
                check(node.size() == 1, "leaf holds more than one point")
                return
            merged = np.concatenate([node.left.points, node.right.points])
            check(
                sorted(merged) == sorted(node.points),
                "children do not partition the node's points",
            )
            walk(node.left)
            walk(node.right)

        walk(self.root)
