"""Planar-graph metrics.

Fixed-minor-free metrics in the paper are shortest-path metrics of
planar graphs; the tree-cover construction for them needs the *graph*
(for shortest-path separators), not only the distances, so this class
keeps the adjacency structure alongside cached Dijkstra distances.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Tuple

import numpy as np
from scipy.spatial import Delaunay

from .base import Metric

__all__ = ["PlanarGraphMetric", "grid_graph_metric", "delaunay_metric"]


class PlanarGraphMetric(Metric):
    """Shortest-path metric of an (assumed planar) weighted graph."""

    def __init__(self, n: int, edges: List[Tuple[int, int, float]]):
        super().__init__(n)
        self.adj: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in edges:
            if u == v:
                continue
            w = float(w)
            current = self.adj[u].get(v)
            if current is None or w < current:
                self.adj[u][v] = w
                self.adj[v][u] = w
        self._dist_cache: Dict[int, np.ndarray] = {}
        if len(self.sssp(0)) != n or np.isinf(self.sssp(0)).any():
            raise ValueError("graph is not connected")

    def edges(self):
        for u in range(self.n):
            for v, w in self.adj[u].items():
                if u < v:
                    yield u, v, w

    def sssp(self, source: int) -> np.ndarray:
        """All distances from ``source`` (cached Dijkstra)."""
        cached = self._dist_cache.get(source)
        if cached is not None:
            return cached
        dist = np.full(self.n, np.inf)
        dist[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self.adj[u].items():
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        self._dist_cache[source] = dist
        return dist

    def sssp_tree(self, source: int) -> List[int]:
        """Parent array of a shortest-path tree rooted at ``source``."""
        dist = np.full(self.n, np.inf)
        parent = [-1] * self.n
        dist[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self.adj[u].items():
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        return parent

    def distance(self, u: int, v: int) -> float:
        return float(self.sssp(u)[v])


def grid_graph_metric(side: int, seed: int = 0) -> PlanarGraphMetric:
    """A ``side x side`` grid with random edge weights."""
    rng = random.Random(seed)
    edges = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                edges.append((v, v + 1, rng.uniform(1.0, 10.0)))
            if r + 1 < side:
                edges.append((v, v + side, rng.uniform(1.0, 10.0)))
    return PlanarGraphMetric(side * side, edges)


def delaunay_metric(n: int, seed: int = 0, scale: float = 1000.0) -> PlanarGraphMetric:
    """Delaunay triangulation of random points — a natural planar graph.

    Edge weights are Euclidean lengths, so the metric is a planar
    perturbation of the underlying point set's metric.
    """
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, scale, size=(n, 2))
    tri = Delaunay(pts)
    edges = set()
    for simplex in tri.simplices:
        for a in range(3):
            u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
            edges.add((min(u, v), max(u, v)))
    weighted = [
        (u, v, float(np.linalg.norm(pts[u] - pts[v]))) for u, v in sorted(edges)
    ]
    return PlanarGraphMetric(n, weighted)
