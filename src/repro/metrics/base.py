"""The abstract metric-space interface.

Every construction in this library (tree covers, spanners, navigation,
routing) consumes a :class:`Metric`: ``n`` points identified by integers
``0 .. n-1`` and a distance callable satisfying the metric axioms.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Tuple

from ..errors import MetricValidationError, check

__all__ = ["Metric", "check_metric_axioms", "sample_pairs", "aspect_ratio"]


class Metric:
    """Base class for finite metric spaces.

    Subclasses implement :meth:`distance`.  ``metric(u, v)`` is sugar for
    ``metric.distance(u, v)``.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("a metric space needs at least one point")
        self.n = n

    def distance(self, u: int, v: int) -> float:
        raise NotImplementedError

    def __call__(self, u: int, v: int) -> float:
        return self.distance(u, v)

    def __len__(self) -> int:
        return self.n

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All unordered pairs of distinct points."""
        return itertools.combinations(range(self.n), 2)

    def ball(self, center: int, radius: float) -> List[int]:
        """Points within ``radius`` of ``center`` (inclusive). O(n)."""
        return [v for v in range(self.n) if self.distance(center, v) <= radius]

    def nearest(self, point: int, candidates: Iterable[int]) -> int:
        """The candidate closest to ``point``."""
        return min(candidates, key=lambda c: self.distance(point, c))


def check_metric_axioms(metric: Metric, trials: int = 200, seed: int = 0) -> None:
    """Spot-check symmetry, identity and the triangle inequality.

    Raises :class:`~repro.errors.MetricValidationError` on the first
    violated axiom.  Used by tests on randomly generated metrics and by
    the opt-in validation mode of :mod:`repro.resilience.validation`.
    """
    rng = random.Random(seed)
    n = metric.n
    for _ in range(trials):
        u, v, w = (rng.randrange(n) for _ in range(3))
        duv = metric.distance(u, v)
        check(duv == duv, f"distance ({u}, {v}) is NaN", MetricValidationError)
        check(duv >= 0, "distances must be non-negative", MetricValidationError)
        check(
            abs(duv - metric.distance(v, u)) < 1e-9,
            "metric must be symmetric",
            MetricValidationError,
        )
        check(
            metric.distance(u, u) == 0,
            "self distance must be zero",
            MetricValidationError,
        )
        if u != v:
            check(
                duv > 0,
                "distinct points must have positive distance",
                MetricValidationError,
            )
        slack = 1e-9 * max(1.0, duv)
        check(
            duv <= metric.distance(u, w) + metric.distance(w, v) + slack,
            "triangle inequality violated",
            MetricValidationError,
        )


def sample_pairs(
    n: int, count: int, seed: int = 0, include_extremes: bool = True
) -> List[Tuple[int, int]]:
    """A deterministic sample of distinct point pairs for evaluation.

    With ``include_extremes`` the sample always contains (0, n-1) so that
    benches hit at least one long-range pair.
    """
    rng = random.Random(seed)
    pairs = set()
    if include_extremes and n > 1:
        pairs.add((0, n - 1))
    limit = n * (n - 1) // 2
    while len(pairs) < min(count, limit):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            pairs.add((min(u, v), max(u, v)))
    return sorted(pairs)


def aspect_ratio(metric: Metric, sample: Optional[int] = None, seed: int = 0) -> float:
    """The ratio of the largest to smallest pairwise distance.

    Exact for small metrics; sampled when ``sample`` is given.
    """
    if sample is None:
        pairs = list(metric.pairs())
    else:
        pairs = sample_pairs(metric.n, sample, seed=seed)
    distances = [metric.distance(u, v) for u, v in pairs]
    smallest = min(d for d in distances if d > 0)
    return max(distances) / smallest
