"""The abstract metric-space interface.

Every construction in this library (tree covers, spanners, navigation,
routing) consumes a :class:`Metric`: ``n`` points identified by integers
``0 .. n-1`` and a distance callable satisfying the metric axioms.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MetricValidationError, check
from ..observability import OBS

__all__ = ["Metric", "check_metric_axioms", "sample_pairs", "aspect_ratio"]

# Batch requests served by the scalar-loop fallbacks below.  A hot path
# seeing these grow on a supports_batch metric is dispatching wrong.
_C_FALLBACK = OBS.registry.counter("kernel.fallback.batch_calls")


class Metric:
    """Base class for finite metric spaces.

    Subclasses implement :meth:`distance`.  ``metric(u, v)`` is sugar for
    ``metric.distance(u, v)``.

    Besides the scalar :meth:`distance`, every metric exposes a *batch
    kernel* layer — :meth:`distances_from`, :meth:`pairwise`,
    :meth:`pair_distances`, :meth:`ball_many`, :meth:`nearest_many` —
    with numpy-array results.  The base class implements them on top of
    the scalar call so every metric supports the batch API; subclasses
    with a genuinely vectorized implementation (Euclidean via KD-trees,
    matrix metrics via row slicing, tree metrics via batched LCA,
    :class:`~repro.metrics.kernels.CachedMetric`) set
    ``supports_batch = True``, which is what the hot construction paths
    key their prefetching decisions on.
    """

    #: True when the batch kernels are backed by vectorized code rather
    #: than a python loop over :meth:`distance`.  Construction paths use
    #: this to decide whether prefetching whole batches is profitable.
    supports_batch: bool = False

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("a metric space needs at least one point")
        self.n = n

    def distance(self, u: int, v: int) -> float:
        raise NotImplementedError

    def __call__(self, u: int, v: int) -> float:
        return self.distance(u, v)

    def __len__(self) -> int:
        return self.n

    def pairs(self) -> Iterable[Tuple[int, int]]:
        """All unordered pairs of distinct points."""
        return itertools.combinations(range(self.n), 2)

    # ------------------------------------------------------------------
    # Batch distance kernels

    def distances_from(self, u: int) -> np.ndarray:
        """Distances from ``u`` to every point, as a length-``n`` array."""
        if OBS.enabled:
            _C_FALLBACK.inc()
        d = self.distance
        return np.fromiter((d(u, v) for v in range(self.n)), dtype=float, count=self.n)

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """The ``(len(rows), len(cols))`` distance matrix between two id lists."""
        if OBS.enabled:
            _C_FALLBACK.inc()
        d = self.distance
        return np.array([[d(u, v) for v in cols] for u in rows], dtype=float)

    def pair_distances(self, us: Sequence[int], vs: Sequence[int]) -> np.ndarray:
        """Elementwise distances ``[δ(us[0], vs[0]), δ(us[1], vs[1]), ...]``."""
        if len(us) != len(vs):
            raise ValueError("us and vs must have equal length")
        if OBS.enabled:
            _C_FALLBACK.inc()
        d = self.distance
        return np.fromiter(
            (d(u, v) for u, v in zip(us, vs)), dtype=float, count=len(us)
        )

    def ball_many(
        self,
        centers: Sequence[int],
        radius: float,
        within: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """:meth:`ball` for many centers at once.

        With ``within``, results are restricted to (and searched among)
        that candidate id list — the shape the net constructions need.
        """
        if within is None:
            return [self.ball(c, radius) for c in centers]
        within = list(within)
        d = self.distance
        return [[v for v in within if d(c, v) <= radius] for c in centers]

    def nearest_many(
        self,
        points: Sequence[int],
        candidates: Sequence[int],
        return_distance: bool = False,
    ):
        """For each of ``points``, its nearest candidate (first wins ties).

        Returns an int array of candidate ids; with ``return_distance``
        also the corresponding distance array.
        """
        candidates = np.asarray(list(candidates), dtype=np.int64)
        if candidates.size == 0:
            raise ValueError("nearest_many needs at least one candidate")
        points = list(points)
        ids = np.empty(len(points), dtype=np.int64)
        dists = np.empty(len(points), dtype=float)
        chunk = max(1, 1_000_000 // max(1, candidates.size))
        for start in range(0, len(points), chunk):
            block = points[start : start + chunk]
            matrix = self.pairwise(block, candidates)
            arg = np.argmin(matrix, axis=1)
            ids[start : start + chunk] = candidates[arg]
            dists[start : start + chunk] = matrix[np.arange(len(block)), arg]
        if return_distance:
            return ids, dists
        return ids

    # ------------------------------------------------------------------
    # Scalar neighborhood queries

    def ball(self, center: int, radius: float) -> List[int]:
        """Points within ``radius`` of ``center`` (inclusive). O(n)."""
        return [v for v in range(self.n) if self.distance(center, v) <= radius]

    def nearest(self, point: int, candidates: Iterable[int]) -> int:
        """The candidate closest to ``point`` (first wins ties).

        Dispatches to the vectorized :meth:`nearest_many` kernel when the
        metric has one; otherwise a plain scalar loop (no per-candidate
        lambda allocation — this runs in every construction inner loop).
        """
        cand = candidates if isinstance(candidates, list) else list(candidates)
        if not cand:
            raise ValueError("nearest needs at least one candidate")
        if self.supports_batch and len(cand) > 4:
            return int(self.nearest_many([point], cand)[0])
        d = self.distance
        best = cand[0]
        best_d = d(point, best)
        for c in cand[1:]:
            dc = d(point, c)
            if dc < best_d:
                best, best_d = c, dc
        return best


def check_metric_axioms(metric: Metric, trials: int = 200, seed: int = 0) -> None:
    """Spot-check symmetry, identity and the triangle inequality.

    Raises :class:`~repro.errors.MetricValidationError` on the first
    violated axiom.  Used by tests on randomly generated metrics and by
    the opt-in validation mode of :mod:`repro.resilience.validation`.
    """
    rng = random.Random(seed)
    n = metric.n
    for _ in range(trials):
        u, v, w = (rng.randrange(n) for _ in range(3))
        duv = metric.distance(u, v)
        check(duv == duv, f"distance ({u}, {v}) is NaN", MetricValidationError)
        check(duv >= 0, "distances must be non-negative", MetricValidationError)
        check(
            abs(duv - metric.distance(v, u)) < 1e-9,
            "metric must be symmetric",
            MetricValidationError,
        )
        check(
            metric.distance(u, u) == 0,
            "self distance must be zero",
            MetricValidationError,
        )
        if u != v:
            check(
                duv > 0,
                "distinct points must have positive distance",
                MetricValidationError,
            )
        slack = 1e-9 * max(1.0, duv)
        check(
            duv <= metric.distance(u, w) + metric.distance(w, v) + slack,
            "triangle inequality violated",
            MetricValidationError,
        )


def sample_pairs(
    n: int, count: int, seed: int = 0, include_extremes: bool = True
) -> List[Tuple[int, int]]:
    """A deterministic sample of distinct point pairs for evaluation.

    With ``include_extremes`` the sample always contains (0, n-1) so that
    benches hit at least one long-range pair.
    """
    rng = random.Random(seed)
    pairs = set()
    if include_extremes and n > 1:
        pairs.add((0, n - 1))
    limit = n * (n - 1) // 2
    while len(pairs) < min(count, limit):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            pairs.add((min(u, v), max(u, v)))
    return sorted(pairs)


def aspect_ratio(metric: Metric, sample: Optional[int] = None, seed: int = 0) -> float:
    """The ratio of the largest to smallest pairwise distance.

    Exact for small metrics; sampled when ``sample`` is given.
    """
    if sample is None:
        pairs = list(metric.pairs())
    else:
        pairs = sample_pairs(metric.n, sample, seed=seed)
    distances = [metric.distance(u, v) for u, v in pairs]
    smallest = min(d for d in distances if d > 0)
    return max(distances) / smallest
