"""Realistic workload generators.

The paper motivates bounded hop-diameter spanners with road/railway
networks, telecommunication overlays and routing (Section 1.1).  These
generators produce inputs with those characteristics — far from the
uniform point clouds of the default benches:

* :func:`road_network_points` — settlements strung along a few highway
  corridors (doubling, very high aspect ratio, 1-D-ish local structure);
* :func:`hierarchical_points` — recursive cluster-of-clusters geometry
  (fractal; stresses every level of a net hierarchy);
* :func:`power_law_graph_metric` — a scale-free-ish communication graph
  metric (hubs of huge degree, far from doubling);
* :func:`ring_of_cliques_metric` — data centers (cliques) on a ring
  backbone, the overlay-network topology of the routing application.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from .euclidean import EuclideanMetric
from .general import MatrixMetric, graph_metric

__all__ = [
    "road_network_points",
    "hierarchical_points",
    "power_law_graph_metric",
    "ring_of_cliques_metric",
]


def road_network_points(
    n: int, highways: int = 4, seed: int = 0, scale: float = 10000.0
) -> EuclideanMetric:
    """Points scattered tightly along random highway segments."""
    rng = np.random.default_rng(seed)
    segments = rng.uniform(0.0, scale, size=(highways, 2, 2))
    which = rng.integers(0, highways, size=n)
    t = rng.uniform(0.0, 1.0, size=(n, 1))
    starts = segments[which, 0]
    ends = segments[which, 1]
    jitter = rng.normal(0.0, scale / 400.0, size=(n, 2))
    return EuclideanMetric(starts + t * (ends - starts) + jitter)


def hierarchical_points(
    n: int, depth: int = 3, branching: int = 4, seed: int = 0, scale: float = 10000.0
) -> EuclideanMetric:
    """Recursive clusters: each level shrinks the spread by ~8x."""
    rng = np.random.default_rng(seed)
    points = np.zeros((n, 2))
    spread = scale
    for _ in range(depth):
        assignment = rng.integers(0, branching, size=n)
        offsets = rng.uniform(-spread / 2.0, spread / 2.0, size=(branching, 2))
        points += offsets[assignment]
        spread /= 8.0
    points += rng.normal(0.0, spread / 4.0, size=(n, 2))
    return EuclideanMetric(points)


def power_law_graph_metric(n: int, seed: int = 0) -> MatrixMetric:
    """Shortest paths of a preferential-attachment graph.

    Each new vertex attaches to two endpoints sampled proportionally to
    degree, producing hub-dominated topologies whose ball growth
    violates doubling.
    """
    rng = random.Random(seed)
    edges: List[Tuple[int, int, float]] = [(0, 1, rng.uniform(1.0, 5.0))]
    degree_pool = [0, 1]
    for v in range(2, n):
        for _ in range(2):
            target = degree_pool[rng.randrange(len(degree_pool))]
            if target != v:
                edges.append((v, target, rng.uniform(1.0, 5.0)))
                degree_pool.append(target)
        degree_pool.append(v)
    return graph_metric(n, edges)


def ring_of_cliques_metric(
    cliques: int, clique_size: int, seed: int = 0
) -> MatrixMetric:
    """Data centers (cheap internal links) on an expensive ring backbone."""
    rng = random.Random(seed)
    n = cliques * clique_size
    edges: List[Tuple[int, int, float]] = []
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j, rng.uniform(1.0, 2.0)))
        neighbor = ((c + 1) % cliques) * clique_size
        edges.append((base, neighbor, rng.uniform(50.0, 100.0)))
    return graph_metric(n, edges)
