"""Tree metrics: the shortest-path metric of an edge-weighted tree.

Tree metrics are the base case of the whole paper (Theorem 1.1).  The
class carries an LCA index so distance queries cost O(1); the batch
kernels ride on the vectorized sparse-table lookups of
:meth:`~repro.graphs.lca.LcaIndex.distance_many`.  The index is built
lazily on the first query: cover builders create thousands of tree
metrics whose distances are only ever taken in bulk later (or never),
and the Euler-tour sparse table is the dominant cost of constructing
one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..graphs.lca import LcaIndex
from ..graphs.tree import Tree
from ..observability import OBS
from .base import Metric

__all__ = ["TreeMetric"]

_C_SCALAR = OBS.registry.counter("kernel.tree.scalar_calls")
_C_BATCH = OBS.registry.counter("kernel.tree.batch_calls")
_C_LCA_BUILDS = OBS.registry.counter("kernel.tree.lca_builds")


class TreeMetric(Metric):
    """The metric induced by a rooted edge-weighted :class:`Tree`.

    Points of the metric are exactly the tree's vertices.  For Steiner
    settings (required subset), restrict queries to the required ids.
    """

    supports_batch = True

    def __init__(self, tree: Tree):
        super().__init__(tree.n)
        self.tree = tree
        self._lca_index: Optional[LcaIndex] = None

    @property
    def _lca(self) -> LcaIndex:
        if self._lca_index is None:
            if OBS.enabled:
                _C_LCA_BUILDS.inc()
            self._lca_index = LcaIndex(self.tree)
        return self._lca_index

    def __getstate__(self):
        # The sparse table is pure derived state and dwarfs the tree
        # arrays; rebuild it lazily on the other side of the pickle
        # (worker boundary, checkpoint) instead of shipping it.
        state = dict(self.__dict__)
        state["_lca_index"] = None
        return state

    def distance(self, u: int, v: int) -> float:
        if OBS.enabled:
            _C_SCALAR.inc()
        return self._lca.distance(u, v)

    # ------------------------------------------------------------------
    # Batch kernels (vectorized sparse-table LCA)

    def distances_from(self, u: int) -> np.ndarray:
        all_ids = np.arange(self.n, dtype=np.int64)
        return self._lca.distance_many(np.full(self.n, u, dtype=np.int64), all_ids)

    def pair_distances(self, us: Sequence[int], vs: Sequence[int]) -> np.ndarray:
        if len(us) != len(vs):
            raise ValueError("us and vs must have equal length")
        if OBS.enabled:
            _C_BATCH.inc()
        return self._lca.distance_many(
            np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
        )

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        grid_u = np.repeat(rows, len(cols))
        grid_v = np.tile(cols, len(rows))
        return self._lca.distance_many(grid_u, grid_v).reshape(len(rows), len(cols))

    def ball_many(
        self,
        centers: Sequence[int],
        radius: float,
        within: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        domain = (
            np.arange(self.n, dtype=np.int64)
            if within is None
            else np.asarray(within, dtype=np.int64)
        )
        block = self.pairwise(centers, domain) <= radius
        return [domain[np.nonzero(row)[0]].tolist() for row in block]

    def ball(self, center: int, radius: float) -> List[int]:
        return np.nonzero(self.distances_from(center) <= radius)[0].tolist()

    # ------------------------------------------------------------------

    def lca(self, u: int, v: int) -> int:
        return self._lca.lca(u, v)

    def path(self, u: int, v: int):
        """The unique tree path realizing the distance."""
        return self.tree.path(u, v)
