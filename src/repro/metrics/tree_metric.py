"""Tree metrics: the shortest-path metric of an edge-weighted tree.

Tree metrics are the base case of the whole paper (Theorem 1.1).  The
class precomputes an LCA index so distance queries cost O(1).
"""

from __future__ import annotations

from ..graphs.lca import LcaIndex
from ..graphs.tree import Tree
from .base import Metric

__all__ = ["TreeMetric"]


class TreeMetric(Metric):
    """The metric induced by a rooted edge-weighted :class:`Tree`.

    Points of the metric are exactly the tree's vertices.  For Steiner
    settings (required subset), restrict queries to the required ids.
    """

    def __init__(self, tree: Tree):
        super().__init__(tree.n)
        self.tree = tree
        self._lca = LcaIndex(tree)

    def distance(self, u: int, v: int) -> float:
        return self._lca.distance(u, v)

    def lca(self, u: int, v: int) -> int:
        return self._lca.lca(u, v)

    def path(self, u: int, v: int):
        """The unique tree path realizing the distance."""
        return self.tree.path(u, v)
