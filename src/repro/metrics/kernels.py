"""Opt-in distance-matrix caching for small or expensive metrics.

:class:`CachedMetric` wraps any :class:`~repro.metrics.base.Metric` and
memoizes its distances in row *blocks*: the first query touching a row
materializes a ``(block_size, n)`` slab (through the inner metric's
vectorized kernels when it has them, a scalar loop otherwise) and every
later scalar or batch query on those rows is a numpy lookup.

This is the right tool for metrics whose scalar ``distance`` is
expensive and non-vectorizable (shortest-path oracles, API-backed
distances) fed into construction code that revisits pairs many times
— e.g. the robust tree cover touches each close pair at several levels.
It is the *wrong* tool for big Euclidean inputs: the cache is Θ(n²)
memory, so a hard ``max_points`` guard refuses absurd sizes.  See
docs/PERFORMANCE.md for the trade-off discussion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..observability import OBS
from .base import Metric

__all__ = ["CachedMetric"]

_C_CACHE_HITS = OBS.registry.counter("metric.cache.hits")
_C_CACHE_MISSES = OBS.registry.counter("metric.cache.misses")
_C_CACHE_ROWS = OBS.registry.counter("metric.cache.rows_materialized")


class CachedMetric(Metric):
    """Memoizing wrapper exposing the full batch-kernel API.

    Parameters
    ----------
    inner:
        The wrapped metric; only its ``distance`` / batch kernels are
        consulted, once per row block.
    block_size:
        Rows materialized per cache miss.  Larger blocks amortize python
        overhead; smaller blocks keep memory proportional to the rows
        actually touched.
    max_points:
        Guard against accidental Θ(n²) blowups; raise to opt in anyway.
    """

    supports_batch = True

    def __init__(self, inner: Metric, block_size: int = 512, max_points: int = 20000):
        if inner.n > max_points:
            raise ValueError(
                f"CachedMetric would need {inner.n}^2 floats "
                f"({8 * inner.n * inner.n / 1e9:.1f} GB); raise max_points to force"
            )
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        super().__init__(inner.n)
        self.inner = inner
        self.block_size = block_size
        self._blocks: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Block management

    def _block(self, index: int) -> np.ndarray:
        slab = self._blocks.get(index)
        if slab is None:
            lo = index * self.block_size
            hi = min(lo + self.block_size, self.n)
            rows = list(range(lo, hi))
            # Only a miss reaches the inner metric, so inner-kernel call
            # counters (kernel.*.{scalar,batch}_calls) bump exactly once
            # per materialized block — cache hits below never re-count
            # distance work they did not do.
            if self.inner.supports_batch:
                slab = np.asarray(
                    self.inner.pairwise(rows, list(range(self.n))), dtype=float
                )
            else:
                slab = np.vstack([self.inner.distances_from(u) for u in rows])
            self._blocks[index] = slab
            if OBS.enabled:
                _C_CACHE_MISSES.inc()
                _C_CACHE_ROWS.inc(hi - lo)
        elif OBS.enabled:
            _C_CACHE_HITS.inc()
        return slab

    def row(self, u: int) -> np.ndarray:
        """The cached distance row of point ``u`` (computed on first use)."""
        index, offset = divmod(u, self.block_size)
        return self._block(index)[offset]

    @property
    def cached_rows(self) -> int:
        """Number of rows currently materialized (for tests/diagnostics)."""
        return sum(b.shape[0] for b in self._blocks.values())

    # ------------------------------------------------------------------
    # Metric interface

    def distance(self, u: int, v: int) -> float:
        return float(self.row(u)[v])

    def distances_from(self, u: int) -> np.ndarray:
        return self.row(u)

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        cols = np.asarray(cols, dtype=np.int64)
        return np.vstack([self.row(u)[cols] for u in rows])

    def pair_distances(self, us: Sequence[int], vs: Sequence[int]) -> np.ndarray:
        if len(us) != len(vs):
            raise ValueError("us and vs must have equal length")
        return np.fromiter(
            (self.row(u)[v] for u, v in zip(us, vs)), dtype=float, count=len(us)
        )

    def ball_many(
        self,
        centers: Sequence[int],
        radius: float,
        within: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        if within is None:
            return [
                np.nonzero(self.row(c) <= radius)[0].tolist() for c in centers
            ]
        within = np.asarray(within, dtype=np.int64)
        return [
            within[np.nonzero(self.row(c)[within] <= radius)[0]].tolist()
            for c in centers
        ]

    def ball(self, center: int, radius: float) -> List[int]:
        return np.nonzero(self.row(center) <= radius)[0].tolist()
