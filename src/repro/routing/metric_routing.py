"""2-hop compact routing for metric spaces (Theorem 1.3).

The scheme composes the tree-metric routing of Theorem 5.1 with a tree
cover (Table 1):

* the overlay network is the union of the per-tree 2-hop spanners;
* every node stores, per tree, its routing table plus its own distance
  label; every node's *label* carries, per tree, its routing label plus
  its distance label (exact tree distances — our [FGNW17] substitute);
* the source evaluates the pair's distance in each tree from the two
  distance labels (O(ζ) decision time), picks the best tree, and routes
  inside it; with a *Ramsey* cover (general metrics) the destination's
  label simply names its home tree, giving O(1) decision time.

Headers grow by the tree index (⌈log ζ⌉ bits).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.graph import Graph
from ..metrics.base import Metric
from ..treecover.base import TreeCover
from .labels import HeavyPathLabeling, label_bits, label_distance
from .ports import DELIVER, Network, RouteResult
from .tree_routing import TreeRoutingScheme, header_bits, tree_protocol

__all__ = ["MetricRoutingScheme", "metric_protocol", "metric_header_bits"]


def metric_protocol(u: int, table: dict, header, destination_label: dict):
    """The Theorem 1.3 decision function (fixed-port model).

    Module-level and *pure*: it sees only the local table, the header
    and the destination label, exactly the information a node owns in
    the paper's model.  Its purity is what lets the netsim locality
    audit prove compiled nodes consult no global state — keep it free
    of closures over schemes, covers or metrics.

    Header format: ``(tree index, inner tree header)``.
    """
    if header is not None:
        index, inner = header
        port, inner = tree_protocol(
            u, table["trees"][index], inner, destination_label["trees"][index]
        )
        return port, None if port == DELIVER else (index, inner)
    if destination_label["id"] == u:
        return DELIVER, None
    index = destination_label["home"]
    if index is None:
        # Scan the ζ trees with the two distance labels (O(ζ) time).
        best = float("inf")
        index = 0
        for i, own in enumerate(table["dist"]):
            d = label_distance(own, destination_label["dist"][i])
            if d < best:
                best = d
                index = i
    port, inner = tree_protocol(
        u, table["trees"][index], None, destination_label["trees"][index]
    )
    return port, None if port == DELIVER else (index, inner)


def metric_header_bits(header, n: int, zeta: int) -> int:
    """On-wire header size: the inner tree header plus ⌈log ζ⌉ bits."""
    if header is None:
        return 0
    return header_bits(header[1], n) + max(1, zeta.bit_length())


class MetricRoutingScheme:
    """Labels, tables and overlay for 2-hop routing over a tree cover."""

    def __init__(self, metric: Metric, cover: TreeCover, seed: int = 0):
        self.metric = metric
        self.cover = cover
        self.schemes: List[TreeRoutingScheme] = [
            TreeRoutingScheme(cover_tree) for cover_tree in cover.trees
        ]
        # Shared fixed-port overlay: the union of the per-tree spanners.
        overlay = Graph(metric.n)
        for scheme in self.schemes:
            for (a, b) in scheme.overlay_edges():
                overlay.add_edge(a, b, metric.distance(a, b))
        self.network = Network(overlay, seed=seed)
        for scheme in self.schemes:
            scheme.finalize(self.network)

        # Distance labels: exact tree distances from heavy-path labels.
        self._distance_labelings = [
            HeavyPathLabeling(cover_tree.tree) for cover_tree in cover.trees
        ]

        self.labels: Dict[int, dict] = {}
        self.tables: Dict[int, dict] = {}
        ramsey = cover.home is not None
        for p in range(metric.n):
            dist_labels = [
                labeling.label(cover.trees[i].vertex_of_point[p])
                for i, labeling in enumerate(self._distance_labelings)
            ]
            if ramsey:
                home = cover.home[p]
                self.labels[p] = {
                    "id": p,
                    "home": home,
                    "trees": {home: self.schemes[home].labels[p]},
                }
            else:
                self.labels[p] = {
                    "id": p,
                    "home": None,
                    "trees": {
                        i: scheme.labels[p] for i, scheme in enumerate(self.schemes)
                    },
                    "dist": dist_labels,
                }
            self.tables[p] = {
                "trees": [scheme.tables[p] for scheme in self.schemes],
                "dist": dist_labels,
            }

    # ------------------------------------------------------------------

    def protocol(self, u: int, table: dict, header, destination_label: dict):
        """Fixed-port decision function; header = (tree index, inner header).

        Delegates to the module-level :func:`metric_protocol` (kept as a
        method for backwards compatibility with callers holding a
        scheme).
        """
        return metric_protocol(u, table, header, destination_label)

    def route(self, u: int, v: int, max_hops: int = 8) -> RouteResult:
        """Route one packet; returns the trace for verification."""
        n = self.metric.n
        zeta = len(self.schemes)
        return self.network.route(
            u,
            metric_protocol,
            self.labels[v],
            self.tables,
            max_hops=max_hops,
            header_bits=lambda h: metric_header_bits(h, n, zeta),
        )

    # ------------------------------------------------------------------
    # Bit accounting

    def label_size_bits(self, p: int, float_bits: int = 32) -> int:
        n = self.metric.n
        id_bits = max(1, (n - 1).bit_length())
        label = self.labels[p]
        bits = id_bits
        for index, tree_label in label["trees"].items():
            bits += self.schemes[index].label_size_bits(p, n)
        if label["home"] is None:
            for d in label["dist"]:
                bits += label_bits(d, n, float_bits=float_bits)
        else:
            bits += max(1, len(self.schemes).bit_length())
        return bits

    def table_size_bits(self, p: int, float_bits: int = 32) -> int:
        n = self.metric.n
        bits = 0
        for scheme in self.schemes:
            bits += scheme.table_size_bits(p, n)
        for d in self.tables[p]["dist"]:
            bits += label_bits(d, n, float_bits=float_bits)
        return bits

    def verify_route(self, u: int, v: int, gamma: float) -> Tuple[int, float]:
        """Route and check: delivered, <= 2 hops, stretch <= gamma.

        Raises :class:`~repro.errors.InvariantViolation` on the first
        broken guarantee (a real exception, not an ``assert``)."""
        from ..errors import check

        result = self.route(u, v)
        check(
            result.path[0] == u and result.path[-1] == v,
            f"route {result.path} does not connect ({u}, {v})",
        )
        check(result.hops <= 2, f"route {result.path} uses {result.hops} hops")
        base = self.metric.distance(u, v)
        stretch = result.weight / base if base > 0 else 1.0
        check(stretch <= gamma + 1e-6, f"stretch {stretch} exceeds {gamma}")
        return result.hops, stretch