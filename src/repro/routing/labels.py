"""Label-only LCA and tree-distance computation with bit accounting.

The routing schemes of Section 5.1 need two labeling primitives:

* an **LCA labeling** of the recursion tree Φ — the paper cites
  [AHL14] (O(log n)-bit labels, O(1) query); we substitute a heavy-path
  labeling with O(log² n)-bit labels and O(log n)-time label-only
  queries, which stays within Theorem 5.1's O(log² n) label budget (see
  DESIGN.md);
* a **distance labeling** of trees — the paper cites [FGNW17]
  ((1+ε)-approximate, O(log(1/ε) log n) bits); our heavy-path labels
  carry exact weighted depths at O(log² n) bits, again within budget
  and strictly stronger (exact instead of approximate).

A label is a tuple of per-chain entries; every function that consumes
labels uses *only* the labels, never the tree, mirroring the
information constraints of the labeled routing model.  ``label_bits``
charges ``2⌈log n⌉`` bits per (chain, position) entry plus
``float_bits`` per stored depth.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graphs.tree import Tree

__all__ = [
    "HeavyPathLabeling",
    "lca_key",
    "label_distance",
    "label_bits",
    "label_to_jsonable",
    "label_from_jsonable",
]

#: Each label entry: (chain id, exit position within the chain,
#: weighted depth of the exit vertex).
Entry = Tuple[int, int, float]
Label = Tuple[Entry, ...]


class HeavyPathLabeling:
    """Heavy-path decomposition labels for one rooted tree.

    ``labels[v]`` lists, for every heavy chain on the root-to-``v``
    path, the position at which the path leaves the chain (or ends, for
    the last entry) and that exit vertex's weighted depth.  The last
    entry's (chain, position) pair is ``v``'s unique *key*.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        n = tree.n
        size = [1] * n
        for v in tree.postorder():
            for c in tree.children[v]:
                size[v] += size[c]
        # chain_of[v], pos_of[v]: heavy chain membership.
        chain_of = [-1] * n
        pos_of = [0] * n
        heads: List[int] = []
        for v in tree.preorder():
            if chain_of[v] == -1:
                chain = len(heads)
                heads.append(v)
                cur = v
                pos = 0
                while True:
                    chain_of[cur] = chain
                    pos_of[cur] = pos
                    if not tree.children[cur]:
                        break
                    cur = max(tree.children[cur], key=lambda c: size[c])
                    pos += 1
        self.chain_of = chain_of
        self.pos_of = pos_of

        wdepth = tree.weighted_depths()
        labels: List[Label] = [()] * n
        for v in tree.preorder():
            p = tree.parents[v]
            own: Entry = (chain_of[v], pos_of[v], wdepth[v])
            if p == -1:
                labels[v] = (own,)
            elif chain_of[p] == chain_of[v]:
                labels[v] = labels[p][:-1] + (own,)
            else:
                labels[v] = labels[p] + (own,)
        self.labels = labels

    def label(self, v: int) -> Label:
        return self.labels[v]

    def key(self, v: int) -> Tuple[int, int]:
        chain, pos, _ = self.labels[v][-1]
        return (chain, pos)


def lca_key(label_u: Label, label_v: Label) -> Tuple[int, int]:
    """The (chain, position) key of LCA(u, v), from the labels alone."""
    last_common: Optional[Entry] = None
    for eu, ev in zip(label_u, label_v):
        if eu[0] != ev[0]:
            # Different chains entered from the same exit vertex: the LCA
            # is that exit vertex, recorded identically in both prefixes.
            break
        if eu[1] != ev[1]:
            # Same chain, different exit positions: the shallower exit is
            # the LCA.
            shallow = eu if eu[1] < ev[1] else ev
            return (shallow[0], shallow[1])
        last_common = eu
    if last_common is None:
        raise ValueError("labels do not share a root chain")
    return (last_common[0], last_common[1])


def _lca_entry(label_u: Label, label_v: Label) -> Entry:
    last_common: Optional[Entry] = None
    for eu, ev in zip(label_u, label_v):
        if eu[0] != ev[0]:
            break
        if eu[1] != ev[1]:
            return eu if eu[1] < ev[1] else ev
        last_common = eu
    if last_common is None:
        raise ValueError("labels do not share a root chain")
    return last_common


def label_distance(label_u: Label, label_v: Label) -> float:
    """Exact weighted tree distance from two labels."""
    lca = _lca_entry(label_u, label_v)
    return label_u[-1][2] + label_v[-1][2] - 2.0 * lca[2]


def label_bits(label: Label, n: int, float_bits: int = 32) -> int:
    """Size of a label in bits: 2 ids of ⌈log n⌉ bits plus one depth each."""
    id_bits = max(1, (n - 1).bit_length())
    return len(label) * (2 * id_bits + float_bits)


def label_to_jsonable(label: Label) -> list:
    """A label as nested lists, for checkpoint serialization."""
    return [[chain, pos, depth] for chain, pos, depth in label]


def label_from_jsonable(data: object) -> Label:
    """Decode and shape-validate a serialized label.

    Raises :class:`ValueError` on anything that is not a non-empty list
    of ``[chain >= 0, position >= 0, finite depth >= 0]`` entries, so a
    corrupted checkpoint section fails loudly instead of producing
    wrong label distances.
    """
    if not isinstance(data, list) or not data:
        raise ValueError(f"label is not a non-empty entry list: {data!r}")
    entries: List[Entry] = []
    for item in data:
        if not isinstance(item, list) or len(item) != 3:
            raise ValueError(f"label entry {item!r} is not a [chain, pos, depth] triple")
        chain, pos, depth = item
        if not isinstance(chain, int) or chain < 0:
            raise ValueError(f"label chain id {chain!r} is not a non-negative int")
        if not isinstance(pos, int) or pos < 0:
            raise ValueError(f"label position {pos!r} is not a non-negative int")
        if (
            not isinstance(depth, (int, float))
            or isinstance(depth, bool)
            or depth != depth  # NaN
            or depth == float("inf")
            or depth < 0
        ):
            raise ValueError(f"label depth {depth!r} is not a non-negative number")
        entries.append((chain, pos, float(depth)))
    return tuple(entries)
