"""The 2-hop, stretch-1 routing scheme for tree metrics (Theorem 5.1).

The scheme routes on the hop-diameter-2 1-spanner ``G_T`` of
Theorem 1.1.  Each node's label and routing table hold, for every
ancestor β of its home node in the recursion tree Φ, the port of the
edge between the node and β's cut vertex — keyed by β's label-only LCA
key, so the source can locate the relevant cut vertex from the two
labels alone.  Headers carry at most one port number or one node id
(⌈log n⌉ bits); labels and tables are O(log² n) bits.

The implementation is generalized to *cover trees* (trees whose
vertices carry representative metric points): routing then happens
between points, each tree vertex acting through its representative.
``SELF`` markers handle the collapse where a cut vertex's representative
coincides with an endpoint (one hop instead of two).  For a plain tree
metric every vertex represents itself and the scheme is exactly the
paper's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.navigation import TreeNavigator
from ..graphs.tree import Tree
from ..treecover.base import CoverTree
from .labels import HeavyPathLabeling, label_bits, lca_key
from .ports import DELIVER, Network

__all__ = ["TreeRoutingScheme", "tree_protocol", "header_bits", "SELF"]

#: Port sentinel: the cut vertex's representative is this node itself.
SELF = -2


class TreeRoutingScheme:
    """Labels + tables for 2-hop routing over one (cover) tree.

    Build in two phases: the constructor derives the overlay edges; once
    the global :class:`Network` exists (its ports are adversarial and
    shared across trees), :meth:`finalize` fills in port numbers.
    """

    def __init__(self, cover_tree: CoverTree):
        self.cover_tree = cover_tree
        tree = cover_tree.tree
        self.points = list(range(len(cover_tree.vertex_of_point)))
        self.navigator = TreeNavigator(tree, 2, required=cover_tree.vertex_of_point)
        self.phi_labeling = HeavyPathLabeling(self.navigator.phi_index.tree)
        self.rep = cover_tree.rep_point

        # Per point: the Φ node chain from its home up to the root, with
        # each internal node's cut vertex mapped to its representative.
        nodes = self.navigator.phi_nodes
        self._home: Dict[int, int] = {}
        self._ancestors: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
        self._base_neighbors: Dict[int, List[int]] = {}
        for p in self.points:
            x = cover_tree.vertex_of_point[p]
            home_id = self.navigator.home[x]
            self._home[p] = home_id
            chain: List[Tuple[Tuple[int, int], int]] = []
            beta = home_id
            first = True
            while beta != -1:
                node = nodes[beta]
                include = not (first and node.is_leaf)
                if include and not node.is_leaf:
                    cut_rep = self.rep[node.cut_vertices[0]]
                    chain.append((self.phi_labeling.key(beta), cut_rep))
                first = False
                beta = node.parent
            self._ancestors[p] = chain
            home_node = nodes[home_id]
            if home_node.is_leaf:
                members = [
                    self.rep[x2] for x2 in home_node.cut_vertices if self.rep[x2] != p
                ]
                self._base_neighbors[p] = members

        self.labels: Dict[int, dict] = {}
        self.tables: Dict[int, dict] = {}

    def overlay_edges(self) -> Dict[Tuple[int, int], int]:
        """The spanner edges mapped to point pairs (the overlay links)."""
        edges: Dict[Tuple[int, int], int] = {}
        for (a, b) in self.navigator.edges:
            pa, pb = self.rep[a], self.rep[b]
            if pa != pb:
                edges[(min(pa, pb), max(pa, pb))] = 1
        return edges

    def finalize(self, network: Network) -> None:
        """Fill labels and tables with the network's (fixed) ports."""
        for p in self.points:
            phi_label = self.phi_labeling.label(self._home[p])
            h_in: Dict[Tuple[int, int], int] = {}
            h_out: Dict[Tuple[int, int], int] = {}
            for key, cut_rep in self._ancestors[p]:
                if cut_rep == p:
                    h_in[key] = SELF
                    h_out[key] = SELF
                else:
                    h_in[key] = network.port(cut_rep, p)
                    h_out[key] = network.port(p, cut_rep)
            base: Dict[int, int] = {}
            for q in self._base_neighbors.get(p, []):
                base[q] = network.port(p, q)
            home_is_internal = not self.navigator.phi_nodes[self._home[p]].is_leaf
            self.labels[p] = {
                "id": p,
                "phi": phi_label,
                "home_key": self.phi_labeling.key(self._home[p]),
                "home_internal": home_is_internal,
                "h_in": h_in,
            }
            self.tables[p] = {
                "id": p,
                "phi": phi_label,
                "home_key": self.phi_labeling.key(self._home[p]),
                "home_internal": home_is_internal,
                "h_out": h_out,
                "base": base,
            }

    # ------------------------------------------------------------------
    # Bit accounting (Theorem 5.1: O(log^2 n) labels and tables).

    def label_size_bits(self, p: int, n: Optional[int] = None) -> int:
        n = n if n is not None else len(self.points)
        id_bits = max(1, (n - 1).bit_length())
        label = self.labels[p]
        bits = id_bits + 2 * id_bits + 1  # id, home key, internal flag
        bits += label_bits(label["phi"], n, float_bits=0)
        bits += len(label["h_in"]) * (2 * id_bits + id_bits)
        return bits

    def table_size_bits(self, p: int, n: Optional[int] = None) -> int:
        n = n if n is not None else len(self.points)
        id_bits = max(1, (n - 1).bit_length())
        table = self.tables[p]
        bits = id_bits + 2 * id_bits + 1
        bits += label_bits(table["phi"], n, float_bits=0)
        bits += len(table["h_out"]) * (2 * id_bits + id_bits)
        bits += len(table["base"]) * (2 * id_bits)
        return bits


def tree_protocol(u: int, table: dict, header, destination_label: dict):
    """The routing decision function of Theorem 5.1 (fixed-port model).

    Returns ``(port, header)``; see :class:`repro.routing.ports.Network`.
    Headers: ``("deliver",)`` or ``("forward", port)``.
    """
    if header is not None:
        kind = header[0]
        if kind == "deliver":
            return DELIVER, None
        if kind == "forward":
            return header[1], ("deliver",)
        raise ValueError(f"unknown header {header!r}")

    v = destination_label["id"]
    if v == u:
        return DELIVER, None
    base = table["base"]
    if v in base:
        return base[v], ("deliver",)

    lam = lca_key(table["phi"], destination_label["phi"])
    h_out = table["h_out"]
    h_in = destination_label["h_in"]
    if lam == table["home_key"] and table["home_internal"]:
        # u itself is the cut vertex at the Φ-LCA: one direct hop.
        return h_in[lam], ("deliver",)
    if lam == destination_label["home_key"] and destination_label["home_internal"]:
        # v is the cut vertex: one direct hop from u's side.
        return h_out[lam], ("deliver",)
    out_port = h_out[lam]
    in_port = h_in[lam]
    if out_port == SELF:
        # The cut vertex's representative is u: the edge (u, v) exists.
        return in_port, ("deliver",)
    if in_port == SELF:
        # The cut vertex's representative is v itself.
        return out_port, ("deliver",)
    return out_port, ("forward", in_port)


def header_bits(header, n: int = 1 << 16) -> int:
    """Header size: one tag bit plus at most one port number."""
    id_bits = max(1, (n - 1).bit_length())
    if header is None:
        return 0
    if header[0] == "deliver":
        return 1
    return 1 + id_bits


def build_tree_network(tree: Tree, seed: int = 0) -> Tuple[TreeRoutingScheme, Network]:
    """Convenience: scheme + network for a plain tree metric.

    Every vertex is its own representative (the exact Theorem 5.1
    setting).
    """
    identity = list(range(tree.n))
    cover_tree = CoverTree(tree, identity, identity)
    scheme = TreeRoutingScheme(cover_tree)
    from ..graphs.graph import Graph

    overlay = Graph(tree.n)
    metric = scheme.navigator.metric
    for (a, b) in scheme.overlay_edges():
        overlay.add_edge(a, b, metric.distance(a, b))
    network = Network(overlay, seed=seed)
    scheme.finalize(network)
    return scheme, network
