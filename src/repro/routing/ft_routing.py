"""Fault-tolerant 2-hop routing for doubling metrics (Theorem 5.2).

The non-FT scheme stores, per recursion-tree ancestor β, one port to β's
cut vertex.  The FT scheme stores the ports of all ``f + 1`` replicas
``R(cut(β))`` (ordered by id, as in Section 5.2): a source scans the
replica list for a non-faulty intermediate in O(f) time, and the biclique
edges of the FT spanner (Theorem 4.2) guarantee the two hops exist.
Labels and tables grow by the factor ``f`` the theorem predicts.

Fault knowledge follows the paper's model: nodes know the current faulty
set (the simulator passes it to the decision function); packets still
carry only ports in their headers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.navigation import TreeNavigator
from ..errors import FaultBudgetExceeded, InvariantViolation, check
from ..graphs.graph import Graph
from ..metrics.base import Metric
from ..routing.labels import HeavyPathLabeling, label_bits, label_distance, lca_key
from ..routing.ports import DELIVER, Network, RouteResult
from ..treecover.base import TreeCover
from ..treecover.dumbbell import robust_tree_cover

__all__ = ["FaultTolerantRoutingScheme", "ft_protocol_for"]


def ft_protocol_for(faults: Set[int]):
    """The Theorem 5.2 decision function, closed over the faulty set.

    Module-level so compiled netsim nodes can carry it without a
    reference back to the scheme: the only non-local knowledge the
    returned closure holds is ``faults`` — which is exactly the paper's
    model (nodes know the current faulty set).  Everything else comes
    from the per-call ``(table, header, label)`` arguments.
    """

    def protocol(u: int, table: dict, header, label: dict):
        if header is not None:
            if header[0] == "deliver":
                return DELIVER, None
            return header[1], ("deliver",)
        v = label["id"]
        if v == u:
            return DELIVER, None
        # Tree choice by exact per-tree distances (O(ζ) scan).
        best = float("inf")
        index = 0
        for i, own in enumerate(table["dist"]):
            d = label_distance(own, label["dist"][i])
            if d < best:
                best = d
                index = i
        tree_table = table["trees"][index]
        tree_label = label["trees"][index]
        base = tree_table["base"]
        if v in base:
            return base[v], ("deliver",)
        lam = lca_key(tree_table["phi"], tree_label["phi"])
        out_ports = dict(tree_table["h_out"].get(lam, []))
        in_ports = dict(tree_label["h_in"][lam])
        for w in sorted(in_ports):
            if w in faults:
                continue
            if w == u:
                return in_ports[w], ("deliver",)
            if w == v:
                return out_ports[w], ("deliver",)
            if w in out_ports:
                return out_ports[w], ("forward", in_ports[w])
        raise InvariantViolation(
            f"no live replica for lambda={lam}: all {len(in_ports)} "
            "replicas of the cut vertex are faulty"
        )

    return protocol


class _FtTreeData:
    """Per-tree preprocessing: navigator, replica ports, labels."""

    def __init__(self, cover_tree, f: int):
        self.cover_tree = cover_tree
        self.navigator = TreeNavigator(
            cover_tree.tree, 2, required=cover_tree.vertex_of_point
        )
        self.phi_labeling = HeavyPathLabeling(self.navigator.phi_index.tree)
        below = cover_tree.descendant_points()
        #: replicas[v] = R(v): up to f+1 descendant points, sorted by id.
        self.replicas = [sorted(pool[: f + 1]) for pool in below]

    def home_chain(self, p: int) -> List[Tuple[Tuple[int, int], List[int]]]:
        """(Φ-key, replica list of the cut vertex) for each internal
        ancestor of p's home node, including the home itself."""
        nodes = self.navigator.phi_nodes
        x = self.cover_tree.vertex_of_point[p]
        beta = self.navigator.home[x]
        chain = []
        while beta != -1:
            node = nodes[beta]
            if not node.is_leaf:
                cut = node.cut_vertices[0]
                chain.append((self.phi_labeling.key(beta), self.replicas[cut]))
            beta = node.parent
        return chain

    def base_members(self, p: int) -> List[int]:
        nodes = self.navigator.phi_nodes
        x = self.cover_tree.vertex_of_point[p]
        home = nodes[self.navigator.home[x]]
        if not home.is_leaf:
            return []
        rep = self.cover_tree.rep_point
        return [rep[y] for y in home.cut_vertices if rep[y] != p]


class FaultTolerantRoutingScheme:
    """f-FT, 2-hop, (1 + O(ε))-stretch routing over a doubling metric."""

    def __init__(
        self,
        metric: Metric,
        f: int,
        eps: float = 0.45,
        cover: Optional[TreeCover] = None,
        seed: int = 0,
        validate: Optional[bool] = None,
    ):
        if validate is None:
            from ..resilience.validation import validation_enabled

            validate = validation_enabled()
        if validate:
            from ..resilience.validation import validate_metric

            validate_metric(metric)
        self.metric = metric
        self.f = f
        self.cover = cover if cover is not None else robust_tree_cover(metric, eps)
        self.trees = [_FtTreeData(ct, f) for ct in self.cover.trees]

        # Overlay: the FT spanner's biclique edges, union over trees.
        overlay = Graph(metric.n)
        for data in self.trees:
            reps = data.replicas
            for (a, b) in data.navigator.edges:
                for p in reps[a]:
                    for q in reps[b]:
                        if p != q:
                            overlay.add_edge(p, q, metric.distance(p, q))
        self.network = Network(overlay, seed=seed)
        self.overlay = overlay

        self._distance_labelings = [
            HeavyPathLabeling(ct.tree) for ct in self.cover.trees
        ]

        self.labels: Dict[int, dict] = {}
        self.tables: Dict[int, dict] = {}
        for p in range(metric.n):
            per_tree_labels = []
            per_tree_tables = []
            for data in self.trees:
                chain = data.home_chain(p)
                h_in = {}
                h_out = {}
                for key, replicas in chain:
                    h_in[key] = [
                        (w, None if w == p else self.network.port(w, p))
                        for w in replicas
                    ]
                    h_out[key] = [
                        (w, None if w == p else self.network.port(p, w))
                        for w in replicas
                    ]
                x = data.cover_tree.vertex_of_point[p]
                phi_label = data.phi_labeling.label(data.navigator.home[x])
                base = {
                    q: self.network.port(p, q) for q in data.base_members(p)
                }
                per_tree_labels.append({"phi": phi_label, "h_in": h_in})
                per_tree_tables.append(
                    {"phi": phi_label, "h_out": h_out, "base": base}
                )
            dist = [
                labeling.label(self.cover.trees[i].vertex_of_point[p])
                for i, labeling in enumerate(self._distance_labelings)
            ]
            self.labels[p] = {"id": p, "trees": per_tree_labels, "dist": dist}
            self.tables[p] = {"trees": per_tree_tables, "dist": dist}

    # ------------------------------------------------------------------

    def protocol_for(self, faults: Set[int]):
        """A decision function closed over the current faulty set.

        Delegates to the module-level :func:`ft_protocol_for` (kept as
        a method for backwards compatibility)."""
        return ft_protocol_for(faults)

    def route(
        self,
        u: int,
        v: int,
        faults: Iterable[int] = (),
        enforce_budget: bool = True,
    ) -> RouteResult:
        """Route one packet, avoiding the faulty set.

        With ``enforce_budget`` (the default), ``|F| > f`` raises
        :class:`FaultBudgetExceeded`.  ``enforce_budget=False`` is the
        best-effort mode used by :mod:`repro.resilience.degradation`:
        the packet is launched anyway and may fail with
        :class:`InvariantViolation` if every replica of a needed cut
        vertex is dead.
        """
        faulty = set(faults)
        if u in faulty or v in faulty:
            raise ValueError("endpoints must be non-faulty")
        if enforce_budget and len(faulty) > self.f:
            raise FaultBudgetExceeded(self.f, faulty)
        return self.network.route(
            u, self.protocol_for(faulty), self.labels[v], self.tables, max_hops=8
        )

    def verify_route(
        self, u: int, v: int, faults: Set[int], gamma: float
    ) -> Tuple[int, float]:
        """Route and check delivery, the 2-hop budget, fault avoidance
        and the stretch bound; raises :class:`InvariantViolation` (never
        a ``python -O``-stripped ``assert``) on violation."""
        result = self.route(u, v, faults)
        check(
            result.path[0] == u and result.path[-1] == v,
            f"route {result.path} does not connect ({u}, {v})",
        )
        check(result.hops <= 2, f"{result.path} uses {result.hops} hops")
        check(not (set(result.path) & faults), "route visits a faulty node")
        base = self.metric.distance(u, v)
        stretch = result.weight / base if base > 0 else 1.0
        check(stretch <= gamma + 1e-6, f"stretch {stretch} exceeds {gamma}")
        return result.hops, stretch

    # ------------------------------------------------------------------

    def label_size_bits(self, p: int, float_bits: int = 32) -> int:
        n = self.metric.n
        id_bits = max(1, (n - 1).bit_length())
        bits = id_bits
        label = self.labels[p]
        for tree_label in label["trees"]:
            bits += label_bits(tree_label["phi"], n, float_bits=0)
            for entries in tree_label["h_in"].values():
                bits += 2 * id_bits + len(entries) * 2 * id_bits
        for d in label["dist"]:
            bits += label_bits(d, n, float_bits=float_bits)
        return bits

    def table_size_bits(self, p: int, float_bits: int = 32) -> int:
        n = self.metric.n
        id_bits = max(1, (n - 1).bit_length())
        bits = 0
        table = self.tables[p]
        for tree_table in table["trees"]:
            bits += label_bits(tree_table["phi"], n, float_bits=0)
            for entries in tree_table["h_out"].values():
                bits += 2 * id_bits + len(entries) * 2 * id_bits
            bits += len(tree_table["base"]) * 2 * id_bits
        for d in table["dist"]:
            bits += label_bits(d, n, float_bits=float_bits)
        return bits