"""The fixed-port network simulator for routing schemes.

Routing in the paper's model (Section 5.1) happens on an *overlay
network* (a spanner); each node's incident links carry *port numbers
chosen by an adversary* (the fixed-port model), packets carry a small
header, and each node may consult only its local routing table plus the
destination label handed to the source.

:class:`Network` enforces exactly that: a routing protocol is a callable
that sees ``(node id, local table, header, destination label)`` and
returns either a port to forward on (with a new header) or ``DELIVER``;
the simulator walks the ports, verifies every hop is a real link,
accumulates the traveled weight, and reports the trace.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..errors import RoutingError
from ..graphs.graph import Graph

__all__ = ["Network", "RouteResult", "DELIVER"]

#: Sentinel a protocol returns to signal the packet has arrived.
DELIVER = -1


class RouteResult:
    """Outcome of one routed packet."""

    def __init__(self, path: List[int], weight: float, header_bits: int):
        self.path = path
        self.weight = weight
        #: Largest header (in bits) the packet carried along the route.
        self.header_bits = header_bits

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def __repr__(self) -> str:
        return f"RouteResult(hops={self.hops}, weight={self.weight:.3f})"


class Network:
    """A fixed-port overlay network over a weighted graph."""

    def __init__(self, graph: Graph, seed: int = 0):
        self.graph = graph
        rng = random.Random(seed)
        #: port_to[u][v] = the port at u leading to neighbor v.
        self.port_to: List[Dict[int, int]] = []
        #: neighbor_at[u][p] = the neighbor of u behind port p.
        self.neighbor_at: List[Dict[int, int]] = []
        for u in range(graph.n):
            neighbors = sorted(graph.adj[u])
            ports = list(range(len(neighbors)))
            rng.shuffle(ports)  # the adversary's port assignment
            self.port_to.append(dict(zip(neighbors, ports)))
            self.neighbor_at.append(dict(zip(ports, neighbors)))

    def port(self, u: int, v: int) -> int:
        """The (adversarial) port at ``u`` for the link to ``v``.

        Raises :class:`~repro.errors.RoutingError` when no link between
        ``u`` and ``v`` was ever wired — a dead or never-provisioned
        neighbor must surface as a typed routing failure, not a bare
        ``KeyError`` (the netsim fault plane makes this path reachable
        in ordinary operation).
        """
        try:
            return self.port_to[u][v]
        except KeyError:
            raise RoutingError(
                f"node {u} has no wired link to {v}: the overlay never "
                "provisioned that edge", node=u,
            ) from None

    def route(
        self,
        source: int,
        protocol: Callable,
        destination_label,
        tables,
        max_hops: int = 64,
        header_bits: Callable = None,
    ) -> RouteResult:
        """Walk a packet from ``source`` until the protocol delivers it.

        ``protocol(u, table_u, header, destination_label)`` must return
        ``(port, new_header)``; ``port == DELIVER`` ends the walk.
        """
        path = [source]
        header = None
        worst_header = 0
        weight = 0.0
        for _ in range(max_hops):
            u = path[-1]
            port, header = protocol(u, tables[u], header, destination_label)
            if port == DELIVER:
                return RouteResult(path, weight, worst_header)
            if port not in self.neighbor_at[u]:
                raise RoutingError(
                    f"node {u} has no port {port}: the protocol forwarded "
                    "onto a link that was never wired",
                    node=u, port=port,
                )
            if header_bits is not None and header is not None:
                worst_header = max(worst_header, header_bits(header))
            v = self.neighbor_at[u][port]
            weight += self.graph.adj[u][v]
            path.append(v)
        raise RoutingError(
            f"packet from {source} exceeded {max_hops} hops", node=path[-1]
        )
