"""Compact routing schemes: trees (Thm 5.1), metrics (Thm 1.3), FT (Thm 5.2)."""

from .ft_routing import FaultTolerantRoutingScheme, ft_protocol_for
from .labels import HeavyPathLabeling, label_bits, label_distance, lca_key
from .metric_routing import MetricRoutingScheme, metric_header_bits, metric_protocol
from .ports import DELIVER, Network, RouteResult
from .tree_routing import (
    SELF,
    TreeRoutingScheme,
    build_tree_network,
    header_bits,
    tree_protocol,
)

__all__ = [
    "FaultTolerantRoutingScheme",
    "ft_protocol_for",
    "HeavyPathLabeling",
    "label_bits",
    "label_distance",
    "lca_key",
    "MetricRoutingScheme",
    "metric_header_bits",
    "metric_protocol",
    "DELIVER",
    "Network",
    "RouteResult",
    "SELF",
    "TreeRoutingScheme",
    "build_tree_network",
    "header_bits",
    "tree_protocol",
]
