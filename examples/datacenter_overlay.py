"""General-metric overlay: data centers on a ring, Ramsey-routed.

General metrics are where the paper strengthens the Mendel–Naor
question (Question 1.2): report a constant-hop, O(ℓ)-stretch path *on a
sparse spanner* in constant time.  This example models data centers
(cheap internal links) on an expensive ring backbone, builds a Ramsey
tree cover, routes packets in 2 hops with O(1) decision time, and uses
the bottleneck oracle (the [AS87] multiterminal-flow application) to
answer capacity questions with k−1 min-operations per query.

Run::

    python examples/datacenter_overlay.py
"""

import random

from repro.apps import BottleneckOracle
from repro.core import MetricNavigator
from repro.graphs import Graph
from repro.metrics import ring_of_cliques_metric
from repro.routing import MetricRoutingScheme
from repro.treecover import ramsey_tree_cover
from repro.util import CountingSemigroup


def main():
    cliques, size = 8, 12
    metric = ring_of_cliques_metric(cliques, size, seed=0)
    n = metric.n
    print(f"{cliques} data centers x {size} racks = {n} nodes; "
          "cheap intra-DC links, expensive ring backbone.")

    cover = ramsey_tree_cover(metric, ell=2, seed=1)
    trees_word = "tree" if cover.size == 1 else "trees"
    print(f"Ramsey tree cover: {cover.size} {trees_word}; every node has a home tree "
          "(O(1) routing decisions).")

    navigator = MetricNavigator(metric, cover, k=2)
    print(f"2-hop navigable spanner: {navigator.num_edges} edges "
          f"({navigator.num_edges / (n * (n - 1) / 2):.1%} of the metric).")

    scheme = MetricRoutingScheme(metric, cover, seed=2)
    rng = random.Random(3)
    worst_hops, worst_stretch = 0, 1.0
    for _ in range(400):
        u, v = rng.sample(range(n), 2)
        result = scheme.route(u, v)
        assert result.path[-1] == v
        worst_hops = max(worst_hops, result.hops)
        base = metric.distance(u, v)
        worst_stretch = max(worst_stretch, result.weight / base)
    label_bits = max(scheme.label_size_bits(p) for p in range(n))
    print(f"\n400 packets routed: max {worst_hops} hops, worst stretch "
          f"{worst_stretch:.2f} (O(l)-stretch home trees), labels <= "
          f"{label_bits} bits.")

    # Capacity planning: widest paths via maximum-spanning-tree products.
    rng_cap = random.Random(4)
    capacity = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            d = metric.distance(u, v)
            capacity.add_edge(u, v, 1000.0 / d * rng_cap.uniform(0.8, 1.2))
    counter = CountingSemigroup(min)
    oracle = BottleneckOracle(capacity, k=3, op=counter)
    counter.reset()
    queries = [(rng.sample(range(n), 2)) for _ in range(200)]
    answers = [oracle.bottleneck(u, v) for u, v in queries]
    ops = counter.reset()
    print(f"\nCapacity oracle: {len(queries)} widest-path queries answered with "
          f"{ops / len(queries):.2f} min-operations each (bound k-1 = 2); "
          f"example: bottleneck({queries[0][0]}, {queries[0][1]}) = "
          f"{answers[0]:.1f} units.")


if __name__ == "__main__":
    main()
