"""General-metric overlay: data centers on a ring, Ramsey-routed.

General metrics are where the paper strengthens the Mendel–Naor
question (Question 1.2): report a constant-hop, O(ℓ)-stretch path *on a
sparse spanner* in constant time.  This example models data centers
(cheap internal links) on an expensive ring backbone, builds a Ramsey
tree cover, and then — instead of asking the scheme for routes — runs
the overlay as a distributed system: the scheme compiles to per-node
state, and an event-driven simulator pushes skewed rack-to-aggregator
traffic through store-and-forward links with serialization delay and
bounded egress queues, so congestion and tail-drop are visible the way
an operator would see them.  The bottleneck oracle (the [AS87]
multiterminal-flow application) still answers the capacity questions.

Run::

    python examples/datacenter_overlay.py
"""

import random

from repro.apps import BottleneckOracle
from repro.core import MetricNavigator
from repro.graphs import Graph
from repro.metrics import ring_of_cliques_metric
from repro.netsim import (
    NetworkSimulator,
    SimReport,
    audit_locality,
    compile_metric_scheme,
    hotspot_pairs,
)
from repro.routing import MetricRoutingScheme
from repro.treecover import ramsey_tree_cover
from repro.util import CountingSemigroup


def main():
    cliques, size = 8, 12
    metric = ring_of_cliques_metric(cliques, size, seed=0)
    n = metric.n
    print(f"{cliques} data centers x {size} racks = {n} nodes; "
          "cheap intra-DC links, expensive ring backbone.")

    cover = ramsey_tree_cover(metric, ell=2, seed=1)
    trees_word = "tree" if cover.size == 1 else "trees"
    print(f"Ramsey tree cover: {cover.size} {trees_word}; every node has a home tree "
          "(O(1) routing decisions).")

    navigator = MetricNavigator(metric, cover, k=2)
    print(f"2-hop navigable spanner: {navigator.num_edges} edges "
          f"({navigator.num_edges / (n * (n - 1) / 2):.1%} of the metric).")

    scheme = MetricRoutingScheme(metric, cover, seed=2)
    compiled = compile_metric_scheme(scheme)
    audit_locality(compiled)
    label_bits = max(scheme.label_size_bits(p) for p in range(n))
    print(f"Compiled {compiled.num_links()} directed links; locality audit "
          f"passed; labels <= {label_bits} bits per node.")

    # Skewed traffic: most packets target a few aggregation racks.
    packets = hotspot_pairs(n, 600, seed=3, hotspots=4, hot_fraction=0.7)
    sim = NetworkSimulator(compiled, tie_break="seeded", seed=4)
    sim.send_many(packets, spacing=0.0005)
    sim.run()
    report = SimReport(sim).check_contract(min_delivery=1.0, hop_budget=2)
    print(f"\n{report.delivered}/{report.injected} packets delivered on the "
          f"uncongested overlay: max {report.max_hops} hops, stretch p99 "
          f"{report.stretch_percentile(99):.2f} (O(l)-stretch home trees), "
          f"headers <= {report.max_header_bits} bits.")

    # Overload: one rack bursts a message to every other node at the
    # same instant, with serialization delay and 8-deep egress queues.
    # Deterministic replay — rerunning drops exactly the same packets.
    congested = compile_metric_scheme(scheme, service_time=0.004, queue_cap=8)
    csim = NetworkSimulator(congested, tie_break="seeded", seed=4)
    csim.send_many([(0, v) for v in range(1, n)], spacing=0.0)
    csim.run()
    creport = SimReport(csim)
    dropped = creport.drop_counts["queue_full"]
    print(f"Overload: rack 0 bursts to all {n - 1} others at once "
          f"(4 ms serialization, queue cap 8): {creport.delivered}/"
          f"{creport.injected} delivered, {dropped} tail-dropped at rack 0's "
          f"saturated uplinks, finishing at t={creport.sim_time:.2f}s "
          "simulated.")

    # Capacity planning: widest paths via maximum-spanning-tree products.
    rng = random.Random(5)
    capacity = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            d = metric.distance(u, v)
            capacity.add_edge(u, v, 1000.0 / d * rng.uniform(0.8, 1.2))
    counter = CountingSemigroup(min)
    oracle = BottleneckOracle(capacity, k=3, op=counter)
    counter.reset()
    queries = [rng.sample(range(n), 2) for _ in range(200)]
    answers = [oracle.bottleneck(u, v) for u, v in queries]
    ops = counter.reset()
    print(f"\nCapacity oracle: {len(queries)} widest-path queries answered with "
          f"{ops / len(queries):.2f} min-operations each (bound k-1 = 2); "
          f"example: bottleneck({queries[0][0]}, {queries[0][1]}) = "
          f"{answers[0]:.1f} units.")


if __name__ == "__main__":
    main()
