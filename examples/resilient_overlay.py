"""Fault-tolerant navigation: an overlay that survives node failures.

Theorem 4.2's f-FT spanner keeps k-hop, low-stretch paths between every
pair of *surviving* nodes after up to f nodes fail — the construction
replicates every tree vertex with f+1 descendant points and bicliques
the spanner edges (powered by the Robust Tree Cover, Theorem 4.1).

This example builds a 2-fault-tolerant 3-hop overlay for a clustered
deployment, kills random (and adversarially chosen) nodes, and shows the
overlay still answers every query within budget.

Run::

    python examples/resilient_overlay.py
"""

import random

from repro.metrics import clustered_points
from repro.spanners import FaultTolerantSpanner
from repro.treecover import robust_tree_cover


def main():
    n, f, k = 120, 2, 3
    metric = clustered_points(n, clusters=6, seed=3)
    print(f"{n} nodes in 6 data centers; tolerating f={f} failures, "
          f"hop budget k={k}.")

    cover = robust_tree_cover(metric, eps=0.45)
    spanner = FaultTolerantSpanner(metric, f=f, k=k, cover=cover)
    plain = FaultTolerantSpanner(metric, f=0, k=k, cover=cover)
    print(f"FT spanner: {spanner.edge_count()} edges "
          f"(vs {plain.edge_count()} without fault tolerance — "
          f"the ~(f+1)^2 biclique factor of Theorem 4.2).")

    rng = random.Random(0)
    worst = 0.0
    for trial in range(300):
        u, v = rng.sample(range(n), 2)
        pool = [x for x in range(n) if x not in (u, v)]
        faults = set(rng.sample(pool, f))
        path = spanner.find_path(u, v, faults)
        stretch = spanner.verify_path(u, v, faults, path)
        worst = max(worst, stretch)
    print(f"\n300 random queries under random double faults: all delivered in "
          f"<= {k} hops, worst stretch {worst:.2f}.")

    # Adversarial scenario: fail exactly the intermediates of the
    # fault-free path.
    u, v = 5, 111
    clean = spanner.find_path(u, v)
    intermediates = [x for x in clean[1:-1]][:f]
    if intermediates:
        rerouted = spanner.find_path(u, v, set(intermediates))
        print(f"\nAdversarial test: fault-free path {clean}; after failing "
              f"{intermediates} the overlay reroutes via {rerouted} "
              f"({len(rerouted) - 1} hops, "
              f"stretch {spanner.verify_path(u, v, set(intermediates), rerouted):.2f}).")
    else:
        print(f"\nPair ({u}, {v}) is directly connected; nothing to fail.")


if __name__ == "__main__":
    main()
