"""2-hop compact routing in a simulated wireless sensor field.

The paper's flagship application (Theorems 5.1 / 1.3): route packets
between nodes scattered in the plane using at most **2 hops** on a
sparse overlay, with O(log² n)-bit labels and tables — prior Euclidean
routing schemes all needed Ω(log n) hops.

We drop n sensors at random, build a robust tree cover (Theorem 4.1),
the union overlay, and the fixed-port routing scheme, then deliver a
batch of packets and report hops, stretch and memory per node.

Run::

    python examples/sensor_network_routing.py
"""

import math
import random

from repro.metrics import random_points, sample_pairs
from repro.routing import MetricRoutingScheme
from repro.treecover import robust_tree_cover


def main():
    n = 150
    field = random_points(n, dim=2, seed=7, scale=1000.0)
    print(f"Sensor field: {n} nodes in a 1 km x 1 km square.")

    cover = robust_tree_cover(field, eps=0.45)
    scheme = MetricRoutingScheme(field, cover, seed=1)
    overlay_edges = scheme.network.graph.num_edges
    print(f"Tree cover: {cover.size} trees; overlay network: {overlay_edges} "
          f"links ({overlay_edges / (n * (n - 1) / 2):.1%} of the complete graph).")

    packets = sample_pairs(n, 400, seed=2)
    hops = []
    stretches = []
    for source, target in packets:
        result = scheme.route(source, target)
        assert result.path[-1] == target
        hops.append(result.hops)
        base = field.distance(source, target)
        stretches.append(result.weight / base if base else 1.0)

    label_bits = max(scheme.label_size_bits(p) for p in range(n))
    table_bits = max(scheme.table_size_bits(p) for p in range(n))
    print(f"\nDelivered {len(packets)} packets:")
    print(f"  hops:     max {max(hops)}, mean {sum(hops) / len(hops):.2f}  "
          "(paper: <= 2)")
    print(f"  stretch:  max {max(stretches):.3f}, mean "
          f"{sum(stretches) / len(stretches):.3f}  (paper: 1 + O(eps))")
    print(f"  memory:   labels <= {label_bits} bits, tables <= {table_bits} bits "
          f"per node ({label_bits / 8 / 1024:.1f} KiB labels; grows as "
          "eps^-O(d) * log^2 n)")
    print(f"  headers:  <= {math.ceil(math.log2(n)) + cover.size.bit_length() + 1} "
          "bits in flight")

    # Compare against flooding-style multi-hop routing on a bounded-degree
    # topology: a k-nearest-neighbor graph needs many hops.
    from repro.graphs import Graph, bfs_hops

    knn = Graph(n)
    for u in range(n):
        for v in sorted(range(n), key=lambda x: field.distance(u, x))[1:5]:
            knn.add_edge(u, v, field.distance(u, v))
    far = max(range(n), key=lambda v: field.distance(0, v))
    print(f"\nBaseline: 4-NN topology needs {bfs_hops(knn, 0)[far]} hops for the "
          "farthest pair — the overlay does it in 2.")


if __name__ == "__main__":
    main()
