"""2-hop compact routing in a simulated wireless sensor field.

The paper's flagship application (Theorems 5.1 / 1.3): route packets
between nodes scattered in the plane using at most **2 hops** on a
sparse overlay, with O(log² n)-bit labels and tables — prior Euclidean
routing schemes all needed Ω(log n) hops.

This version actually *runs* the distributed model instead of asking a
global object for routes: the scheme is compiled down to per-node state
(label + table + port map, nothing else — the locality audit proves
it), and an event-driven simulator delivers explicit message envelopes
across links whose latency is the metric distance.  A second leg
switches to the fault-tolerant scheme (Theorem 5.2) and lets sensors
die mid-traffic to show packets re-routing around the corpses.

Run::

    python examples/sensor_network_routing.py
"""

import math

from repro.metrics import random_points
from repro.netsim import (
    NetworkSimulator,
    SimReport,
    audit_locality,
    compile_ft_scheme,
    compile_metric_scheme,
    kill_schedule,
    uniform_pairs,
)
from repro.resilience.injectors import RegionalInjector
from repro.routing import FaultTolerantRoutingScheme, MetricRoutingScheme
from repro.treecover import robust_tree_cover


def main():
    n = 150
    field = random_points(n, dim=2, seed=7, scale=1000.0)
    print(f"Sensor field: {n} nodes in a 1 km x 1 km square.")

    cover = robust_tree_cover(field, eps=0.45)
    scheme = MetricRoutingScheme(field, cover, seed=1)
    overlay_edges = scheme.network.graph.num_edges
    print(f"Tree cover: {cover.size} trees; overlay network: {overlay_edges} "
          f"links ({overlay_edges / (n * (n - 1) / 2):.1%} of the complete graph).")

    compiled = compile_metric_scheme(scheme)
    audit_locality(compiled)
    print("Compiled to per-node state (label + table + ports only); "
          "locality audit passed — no node can reach the metric or cover.")

    sim = NetworkSimulator(compiled, tie_break="seeded", seed=2)
    sim.send_many(uniform_pairs(n, 400, seed=3), spacing=0.001)
    sim.run()
    report = SimReport(sim).check_contract(min_delivery=1.0, hop_budget=2)

    label_bits = max(scheme.label_size_bits(p) for p in range(n))
    table_bits = max(scheme.table_size_bits(p) for p in range(n))
    print(f"\nDelivered {report.delivered}/{report.injected} packets "
          f"({report.events} simulator events):")
    print(f"  hops:     max {report.max_hops}, mean "
          f"{sum(report.hops) / len(report.hops):.2f}  (paper: <= 2)")
    print(f"  stretch:  p99 {report.stretch_percentile(99):.3f}, max "
          f"{report.max_stretch:.3f}  (paper: 1 + O(eps))")
    print(f"  headers:  <= {report.max_header_bits} bits on the wire per hop "
          f"(budget ~ log2 n + log2 zeta = "
          f"{math.ceil(math.log2(n)) + cover.size.bit_length() + 1})")
    print(f"  memory:   labels <= {label_bits} bits, tables <= {table_bits} "
          "bits per node (grows as eps^-O(d) * log^2 n)")

    # -- sensors die mid-traffic (Theorem 5.2) ---------------------------
    f = 2
    ft = FaultTolerantRoutingScheme(field, f=f, cover=cover, seed=4)
    ft_compiled = compile_ft_scheme(ft)
    audit_locality(ft_compiled)
    ft_sim = NetworkSimulator(ft_compiled, tie_break="seeded", seed=5)
    packets = uniform_pairs(n, 400, seed=6)
    ft_sim.send_many(packets, spacing=0.001)
    # A cheap region of the field loses power halfway through the run.
    for when, victim in kill_schedule(
        RegionalInjector(field, seed=8), count=f, start=0.2, spacing=0.02
    ):
        ft_sim.kill_at(when, victim)
    ft_sim.run()
    ft_report = SimReport(ft_sim).check_contract(
        min_delivery=0.9, hop_budget=2, expected_kills=f
    )
    lost = {r: c for r, c in ft_report.drop_counts.items() if c}
    print(f"\nFault-tolerant leg (f={f}): killed {ft_report.kills} sensors "
          "mid-traffic;")
    print(f"  delivered {ft_report.delivered}/{ft_report.injected} "
          f"({100 * ft_report.delivery_rate:.1f}%), still <= "
          f"{ft_report.max_hops} hops; losses {lost or 'none'} "
          "(only traffic touching dead sensors).")


if __name__ == "__main__":
    main()
