"""Quickstart: navigate a tree metric with 2 hops and stretch 1.

The paper's core object (Theorem 1.1): a 1-spanner of hop-diameter k for
a tree metric, with a data structure that *reports* the k-hop path in
O(k) time.  Run::

    python examples/quickstart.py
"""

from repro import TreeNavigator, alpha_k
from repro.graphs import random_tree
from repro.metrics import TreeMetric


def main():
    n = 5000
    tree = random_tree(n, seed=42)
    metric = TreeMetric(tree)

    print(f"Tree metric with {n} vertices.")
    print(f"{'k':>3} {'edges':>9} {'n*alpha_k':>10} {'path 17->4242'}")
    for k in (2, 3, 4, 5):
        navigator = TreeNavigator(tree, k)
        path = navigator.find_path(17, 4242)
        weight = sum(
            navigator.edges[(min(a, b), max(a, b))] for a, b in zip(path, path[1:])
        )
        direct = metric.distance(17, 4242)
        assert abs(weight - direct) < 1e-6, "stretch must be exactly 1"
        print(
            f"{k:>3} {navigator.num_edges:>9} "
            f"{n * max(1, alpha_k(k, n)):>10} "
            f"{len(path) - 1} hops via {path}"
        )

    print("\nEvery path above weighs exactly the tree distance "
          f"({direct:.2f}) — stretch 1 with 2-5 hops, on a spanner far "
          "smaller than the n^2/2 edges of the metric itself.")


if __name__ == "__main__":
    main()
