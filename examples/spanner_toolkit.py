"""Computing on the spanner: sparsification, SPT, MST, path maxima.

Section 5 of the paper argues a navigation oracle makes the spanner a
*computational substrate*: you can build shortest-path trees, minimum
spanning trees and sparsified spanners that live inside the overlay,
without ever touching the Θ(n²) metric.  This example runs all four
applications on one Euclidean instance.

Run::

    python examples/spanner_toolkit.py
"""

import random

from repro.apps import (
    MstVerifier,
    approximate_mst,
    approximate_spt,
    base_mst,
    mst_weight,
    sparsify_report,
)
from repro.core import MetricNavigator
from repro.graphs import Tree
from repro.metrics import random_points
from repro.spanners import complete_graph
from repro.treecover import robust_tree_cover


def main():
    n = 150
    metric = random_points(n, dim=2, seed=11)
    cover = robust_tree_cover(metric, eps=0.45)
    navigator = MetricNavigator(metric, cover, k=3)
    print(f"{n} points; cover of {cover.size} trees; 3-hop navigable spanner "
          f"H_X with {navigator.num_edges} edges.\n")

    # 1. Sparsify a dense input spanner (Theorem 5.3).
    dense = complete_graph(metric)
    before, after, _ = sparsify_report(dense, navigator, t=1.0)
    print("1. Sparsification (Theorem 5.3):")
    print(f"   complete graph {before.edges} edges -> {after.edges} edges; "
          f"stretch {before.stretch:.2f} -> {after.stretch:.2f}; "
          f"lightness {before.lightness:.1f} -> {after.lightness:.1f}")

    # 2. Approximate SPT inside the spanner (Theorem 5.4, Algorithm 3).
    root = 0
    parent, dist = approximate_spt(navigator, root)
    worst = max(dist[v] / metric.distance(root, v) for v in range(1, n))
    print(f"\n2. Approximate SPT from node {root} (Theorem 5.4):")
    print(f"   built from {n - 1} navigation queries; worst root-stretch "
          f"{worst:.3f}; every tree edge is a spanner edge.")

    # 3. Approximate MST inside the spanner (Theorem 5.5).
    exact = mst_weight(base_mst(metric))
    approx_edges = approximate_mst(navigator)
    print(f"\n3. Approximate MST (Theorem 5.5):")
    print(f"   weight {mst_weight(approx_edges):.1f} vs exact {exact:.1f} "
          f"(ratio {mst_weight(approx_edges) / exact:.4f}), inside the spanner.")

    # 4. Online MST verification on that tree (Section 5.6.2).
    tree = Tree.from_edges(n, approx_edges)
    verifier = MstVerifier(tree, k=2)
    rng = random.Random(1)
    tree_pairs = {(min(u, v), max(u, v)) for u, v, _ in approx_edges}
    comparisons = []
    confirmed = checked = 0
    while checked < 500:
        u, v = rng.sample(range(n), 2)
        if (min(u, v), max(u, v)) in tree_pairs:
            continue
        heavier, used = verifier.verify_by_order(u, v, metric.distance(u, v))
        comparisons.append(used)
        confirmed += heavier
        checked += 1
    print(f"\n4. Online MST verification (Section 5.6.2):")
    print(f"   {checked} non-tree edges checked, {confirmed} confirmed heavier "
          f"than their tree path (the cycle property), with exactly "
          f"{max(comparisons)} weight comparison per query "
          "(the sorted-order trick; the generic scheme uses k).")


if __name__ == "__main__":
    main()
